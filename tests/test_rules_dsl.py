"""Unit tests for the rule DSL and specifications (repro.rules)."""

import pytest

from repro.core.ast import C, Constraint, attr
from repro.core.errors import RuleError, SpecificationError
from repro.core.matching import RejectMatch, ViewInstance
from repro.rules.dsl import (
    V,
    ap,
    attr_in,
    attr_is,
    cpat,
    distinct,
    rule,
    same_view,
    table_lookup,
    value_is,
    where,
)
from repro.rules.spec import MappingSpecification, audit_vocabulary


class TestCpat:
    def test_bare_string(self):
        pattern = cpat("pyear", "=", V("Y"))
        assert pattern.lhs.attr == "pyear"
        assert pattern.lhs.view is None

    def test_qualified_string(self):
        pattern = cpat("fac.dept", "=", V("D"))
        assert pattern.lhs.view == "fac"
        assert pattern.lhs.attr == "dept"

    def test_too_deep_rejected(self):
        with pytest.raises(RuleError):
            cpat("a.b.c", "=", V("X"))

    def test_var_lhs_passthrough(self):
        assert cpat(V("A"), "=", V("N")).lhs == V("A")

    def test_ap_passthrough(self):
        pattern = ap("ln", view=V("V1"), index=V("i"))
        assert cpat(pattern, "=", V("N")).lhs is pattern


class TestConditions:
    def test_value_is(self):
        check = value_is("N")
        assert check({"N": "plain"})
        assert not check({"N": attr("fac.ln")})

    def test_attr_is(self):
        check = attr_is("N")
        assert check({"N": attr("fac.ln")})
        assert not check({"N": 42})

    def test_attr_in_with_ref(self):
        check = attr_in("A", {"ln", "fn"})
        assert check({"A": attr("fac.ln")})
        assert not check({"A": attr("fac.dept")})

    def test_attr_in_with_name_string(self):
        check = attr_in("A", {"ln", "fn"})
        assert check({"A": "fn"})
        assert not check({"A": "dept"})

    def test_distinct(self):
        check = distinct("i", "j")
        assert check({"i": 1, "j": 2})
        assert not check({"i": 1, "j": 1})

    def test_same_view(self):
        check = same_view("A", "B")
        assert check({"A": attr("fac.ln"), "B": attr("fac.fn")})
        assert not check({"A": attr("fac.ln"), "B": attr("pub.fn")})
        assert check({"A": ViewInstance("fac", 1), "B": attr("fac[1].ln")})

    def test_same_view_type_error(self):
        with pytest.raises(RuleError):
            same_view("A")({"A": 42})

    def test_where_passthrough(self):
        fn = lambda b: True  # noqa: E731
        assert where(fn) is fn


class TestTableLookup:
    def test_hit(self):
        lookup = table_lookup({"cs": 230}, lambda b: b["D"])
        assert lookup({"D": "cs"}) == 230

    def test_miss_vetoes(self):
        lookup = table_lookup({"cs": 230}, lambda b: b["D"])
        with pytest.raises(RejectMatch):
            lookup({"D": "astrology"})


class TestSpecification:
    def _rule(self, name):
        return rule(
            name,
            patterns=[cpat("a", "=", V("X"))],
            emit=lambda b: C("t", "=", b["X"]),
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            MappingSpecification(
                "K", "T", rules=(self._rule("R1"), self._rule("R1"))
            )

    def test_get_rule(self):
        spec = MappingSpecification("K", "T", rules=(self._rule("R1"),))
        assert spec.get_rule("R1").name == "R1"
        with pytest.raises(KeyError):
            spec.get_rule("R9")

    def test_len_iter_str(self):
        spec = MappingSpecification("K", "T", rules=(self._rule("R1"),))
        assert len(spec) == 1
        assert [r.name for r in spec] == ["R1"]
        assert "K" in str(spec)

    def test_fresh_matchers(self):
        spec = MappingSpecification("K", "T", rules=(self._rule("R1"),))
        assert spec.matcher() is not spec.matcher()


class TestAudit:
    def test_coverage_report(self):
        spec = MappingSpecification(
            "K",
            "T",
            rules=(
                rule(
                    "Ra",
                    patterns=[cpat("a", "=", V("X"))],
                    emit=lambda b: C("t", "=", b["X"]),
                ),
            ),
        )
        covered = C("a", "=", 1)
        uncovered = C("zzz", "=", 1)
        report = audit_vocabulary(spec, [covered, uncovered])
        assert covered in report.covered
        assert uncovered in report.uncovered
        assert report.coverage == 0.5

    def test_empty_audit(self):
        spec = MappingSpecification("K", "T", rules=())
        assert audit_vocabulary(spec, []).coverage == 1.0
