"""Tests for safety and separability (repro.core.safety) — Section 7.1."""

from repro.core.ast import C, conj, disj
from repro.core.safety import (
    base_cross_matchings,
    is_safe,
    is_safe_base,
    is_separable_base,
    is_separable_general,
)
from repro.core.subsume import empirical_subsumes
from repro.engine.eval import evaluate_row
from repro.engine.sources_builtin import MAP_SOURCE_VIRTUALS
from repro.rules import K_AMAZON, K_MAP
from repro.rules.dsl import V, cpat, rule, value_is
from repro.rules.spec import MappingSpecification
from repro.workloads.datasets import grid_points
from repro.workloads.paper_queries import qbook

F_L = C("ln", "=", "Smith")
F_F = C("fn", "=", "John")
F_Y = C("pyear", "=", 1997)
F_M1 = C("pmonth", "=", 5)

F1 = C("x_min", "=", 10)
F2 = C("x_max", "=", 30)
F3 = C("y_min", "=", 20)
F4 = C("y_max", "=", 40)


class TestExample7:
    """Q̂ = (f_l f_f)(f_y)(f_m1) is unsafe: cross-matching {f_y, f_m1}."""

    def test_cross_matching_detected(self):
        conjuncts = [frozenset({F_L, F_F}), frozenset({F_Y}), frozenset({F_M1})]
        delta = base_cross_matchings(conjuncts, K_AMAZON.matcher())
        assert delta == [frozenset({F_Y, F_M1})]

    def test_unsafe(self):
        conjuncts = [frozenset({F_L, F_F}), frozenset({F_Y}), frozenset({F_M1})]
        assert not is_safe_base(conjuncts, K_AMAZON.matcher())

    def test_safe_without_month(self):
        conjuncts = [frozenset({F_L, F_F}), frozenset({F_Y})]
        assert is_safe_base(conjuncts, K_AMAZON.matcher())


def _map_subsumes(broad, narrow):
    """Semantic subsumption over the coordinate grid (Figure 9)."""
    rows = grid_points(step=5, limit=60)
    virtuals = dict(MAP_SOURCE_VIRTUALS)
    return empirical_subsumes(
        broad, narrow, rows, lambda q, row: evaluate_row(q, row, virtuals)
    )


class TestExample8:
    """Theorem 3 on the map source: redundant vs essential cross-matchings."""

    def test_ranges_pairing_has_cross_matchings(self):
        conjuncts = [frozenset({F1, F2}), frozenset({F3, F4})]
        delta = base_cross_matchings(conjuncts, K_MAP.matcher())
        assert {frozenset({F1, F3}), frozenset({F2, F4})} == set(delta)

    def test_ranges_pairing_unsafe_but_separable(self):
        conjuncts = [frozenset({F1, F2}), frozenset({F3, F4})]
        matcher = K_MAP.matcher()
        assert not is_safe_base(conjuncts, matcher)
        # Both cross-matchings are redundant: Eq. 6 holds semantically.
        assert is_separable_base(conjuncts, matcher, subsumes=_map_subsumes)

    def test_mixed_pairing_not_separable(self):
        conjuncts = [frozenset({F1, F4}), frozenset({F2, F3})]
        matcher = K_MAP.matcher()
        assert not is_safe_base(conjuncts, matcher)
        assert not is_separable_base(conjuncts, matcher, subsumes=_map_subsumes)

    def test_propositional_default_is_conservative(self):
        # Without semantic knowledge, the redundant cross-matchings look
        # essential: precise degenerates to safety.
        conjuncts = [frozenset({F1, F2}), frozenset({F3, F4})]
        assert not is_separable_base(conjuncts, K_MAP.matcher())


class TestGeneralSafety:
    def test_qbook_unsafe(self):
        q = qbook()
        assert not is_safe(list(q.children), K_AMAZON.matcher())

    def test_independent_conjunction_safe(self):
        q = conj(
            [
                disj([C("ln", "=", "a"), C("ln", "=", "b")]),
                disj([C("publisher", "=", "x"), C("publisher", "=", "y")]),
            ]
        )
        assert is_safe(list(q.children), K_AMAZON.matcher())

    def test_single_conjunct_trivially_safe(self):
        assert is_safe([C("ln", "=", "a")], K_AMAZON.matcher())


def _anomaly_spec() -> MappingSpecification:
    """The Section 7.1.2 anomaly: matchings {y,z} and {z}, nothing for x."""
    r_yz = rule(
        "Ryz",
        patterns=[cpat("y", "=", V("A")), cpat("z", "=", V("B"))],
        where=[value_is("A", "B")],
        emit=lambda b: conj([C("t_z", "=", b["B"]), C("t_y", "=", b["A"])]),
        exact=True,
    )
    r_z = rule(
        "Rz",
        patterns=[cpat("z", "=", V("B"))],
        where=[value_is("B")],
        emit=lambda b: C("t_z", "=", b["B"]),
        exact=True,
    )
    return MappingSpecification("K_anom", "abstract", rules=(r_yz, r_z))


class TestTheorem4Anomaly:
    """S((x ∨ y)(z)) = S(x ∨ y)S(z) even though (y)(z) is unsafe."""

    def test_unsafe_yet_separable(self):
        spec = _anomaly_spec()
        x, y, z = C("x", "=", 1), C("y", "=", 1), C("z", "=", 1)
        conjuncts = [disj([x, y]), z]
        matcher = spec.matcher()
        assert not is_safe(conjuncts, matcher)
        # The unsafe term's contribution is masked by S(xz) = S(z).
        assert is_separable_general(conjuncts, matcher)

    def test_anomaly_gone_when_x_mapped(self):
        # Give x its own rule: now S(x) != True and separability fails.
        extra = rule(
            "Rx",
            patterns=[cpat("x", "=", V("A"))],
            where=[value_is("A")],
            emit=lambda b: C("t_x", "=", b["A"]),
            exact=True,
        )
        base = _anomaly_spec()
        spec = MappingSpecification(
            "K_anom2", "abstract", rules=base.rules + (extra,)
        )
        x, y, z = C("x", "=", 1), C("y", "=", 1), C("z", "=", 1)
        conjuncts = [disj([x, y]), z]
        assert not is_separable_general(conjuncts, spec.matcher())

    def test_single_conjunct_trivially_separable(self):
        spec = _anomaly_spec()
        assert is_separable_general([C("z", "=", 1)], spec.matcher())
