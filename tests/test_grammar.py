"""Tests for grammar-restricted interfaces and the wrapper (Section 3)."""

import pytest

from repro.core.ast import TRUE
from repro.core.errors import CapabilityError
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.engine.grammar import QueryGrammar, Wrapper
from repro.engine.sources_builtin import make_amazon
from repro.mediator import bookstore_mediator


class TestQueryGrammar:
    def test_unrestricted_accepts_everything(self):
        grammar = QueryGrammar()
        q = parse_query('([a = 1] or [b = 2]) and [c = 3]')
        assert grammar.violations(q) == []

    def test_no_disjunction(self):
        grammar = QueryGrammar(allow_disjunction=False)
        assert grammar.violations(parse_query("[a = 1] or [b = 2]"))
        assert grammar.violations(parse_query("[a = 1] and ([b = 2] or [c = 3])"))
        assert not grammar.violations(parse_query("[a = 1] and [b = 2]"))

    def test_max_constraints(self):
        grammar = QueryGrammar(max_constraints=2)
        assert not grammar.violations(parse_query("[a = 1] and [b = 2]"))
        assert grammar.violations(parse_query("[a = 1] and [b = 2] and [c = 3]"))

    def test_required_attrs(self):
        grammar = QueryGrammar(required_attrs=frozenset({"author"}))
        assert grammar.violations(parse_query("[pdate during 97]"))
        assert not grammar.violations(parse_query('[author = "x"] and [pdate during 97]'))

    def test_check_raises(self):
        grammar = QueryGrammar(allow_disjunction=False)
        with pytest.raises(CapabilityError):
            grammar.check(parse_query("[a = 1] or [b = 2]"))


class TestWrapperPlanning:
    def test_conforming_query_passes_through(self):
        grammar = QueryGrammar(allow_disjunction=False)
        wrapper = Wrapper(make_amazon(), grammar)
        q = parse_query('[author = "Smith"] and [pdate during 97]')
        assert wrapper.plan_calls(q) == [q]

    def test_disjunction_splits_into_calls(self):
        grammar = QueryGrammar(allow_disjunction=False)
        wrapper = Wrapper(make_amazon(), grammar)
        q = parse_query('([author = "a"] or [author = "b"]) and [pdate during 97]')
        calls = wrapper.plan_calls(q)
        assert len(calls) == 2
        assert all("pdate" in to_text(call) for call in calls)

    def test_overflow_constraints_dropped_subsumingly(self):
        grammar = QueryGrammar(max_constraints=1)
        wrapper = Wrapper(make_amazon(), grammar)
        q = parse_query('[author = "Smith"] and [pdate during 97]')
        calls = wrapper.plan_calls(q)
        assert len(calls) == 1
        assert len(list(calls[0].iter_constraints())) == 1

    def test_required_attrs_preferred_on_truncation(self):
        grammar = QueryGrammar(
            max_constraints=1, required_attrs=frozenset({"pdate"})
        )
        wrapper = Wrapper(make_amazon(), grammar)
        q = parse_query('[author = "Smith"] and [pdate during 97]')
        calls = wrapper.plan_calls(q)
        assert to_text(calls[0]) == "[pdate during 97]"

    def test_unfillable_required_binding_degrades_to_scan(self):
        grammar = QueryGrammar(required_attrs=frozenset({"isbn"}))
        wrapper = Wrapper(make_amazon(), grammar)
        q = parse_query('[author = "Smith"]')
        assert wrapper.plan_calls(q) == [TRUE]


class TestWrapperExecution:
    Q = '([author = "Clancy, Tom"] or [author = "Smith"]) and [pdate during 97]'

    def test_matches_unrestricted_source(self):
        grammar = QueryGrammar(allow_disjunction=False, max_constraints=2)
        restricted = make_amazon()
        restricted.grammar = grammar
        unrestricted = make_amazon()
        q = parse_query(self.Q)
        got = restricted.execute_rows("catalog", q)
        want = unrestricted.select_rows("catalog", q)
        assert sorted(map(str, got)) == sorted(map(str, want))

    def test_no_duplicates_across_overlapping_disjuncts(self):
        grammar = QueryGrammar(allow_disjunction=False)
        source = make_amazon()
        source.grammar = grammar
        # Both disjuncts match the same Smith row.
        q = parse_query('[author = "Smith"] or [pdate during Jun/97]')
        rows = source.execute_rows("catalog", q)
        titles = [row["title"] for row in rows]
        assert len(titles) == len(set(titles))

    def test_truncation_compensated_by_recheck(self):
        grammar = QueryGrammar(max_constraints=1)
        source = make_amazon()
        source.grammar = grammar
        q = parse_query('[author = "Smith"] and [pdate during Jun/97]')
        rows = source.execute_rows("catalog", q)
        assert [row["title"] for row in rows] == ["JDK for Java"]

    def test_native_interface_still_rejects(self):
        source = make_amazon()
        source.grammar = QueryGrammar(allow_disjunction=False)
        with pytest.raises(CapabilityError):
            source.select_rows("catalog", parse_query('[author = "a"] or [author = "b"]'))


class TestMediationThroughGrammar:
    QUERIES = [
        '[ln = "Clancy"] and [fn = "Tom"]',
        '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
        "[pyear = 1997] and [pmonth = 5]",
        "[kwd contains www]",  # R8 emits a disjunction the form forbids
        '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_equivalence_with_webform_store(self, text):
        grammar = QueryGrammar(allow_disjunction=False, max_constraints=3)
        mediator = bookstore_mediator("amazon", grammar=grammar)
        assert mediator.check_equivalence(parse_query(text)), text


class TestWrapperProperty:
    def test_random_grammars_match_unrestricted(self):
        """Any grammar: the wrapper's answer equals the unrestricted one."""
        import random

        from repro.workloads.datasets import random_books

        rng = random.Random(77)
        rows = random_books(40, seed=8)
        queries = [
            '([author = "Clancy, Tom"] or [author = "Smith"]) and [pdate during 97]',
            '[publisher = "oreilly"] or [publisher = "wiley"] or [subject = "databases"]',
            '[ti-word contains java (and) jdk] and [pdate during 97] and [publisher = "oreilly"]',
            '[author = "Chang"] or ([subject = "programming"] and [pdate during 96])',
        ]
        from repro.core.parser import parse_query as pq

        for trial in range(12):
            grammar = QueryGrammar(
                allow_disjunction=rng.random() < 0.5,
                max_constraints=rng.choice([None, 1, 2, 3]),
            )
            restricted = make_amazon(rows)
            restricted.grammar = grammar
            unrestricted = make_amazon(rows)
            q = pq(rng.choice(queries))
            got = sorted(map(str, restricted.execute_rows("catalog", q)))
            want = sorted(map(str, unrestricted.select_rows("catalog", q)))
            assert got == want, (trial, grammar)
