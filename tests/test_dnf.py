"""Unit tests for DNF conversion (repro.core.dnf)."""

from repro.core.ast import FALSE, TRUE, And, C, Or, conj, disj
from repro.core.dnf import dnf_term_count, dnf_terms, is_simple_conjunction, to_dnf
from repro.core.parser import parse_query
from repro.core.subsume import prop_equivalent

A, B, Cc, D = (C(name, "=", 1) for name in "abcd")


class TestIsSimpleConjunction:
    def test_leaf(self):
        assert is_simple_conjunction(A)
        assert is_simple_conjunction(TRUE)

    def test_and_of_leaves(self):
        assert is_simple_conjunction(conj([A, B]))

    def test_or_is_not(self):
        assert not is_simple_conjunction(disj([A, B]))

    def test_nested_is_not(self):
        assert not is_simple_conjunction(conj([disj([A, B]), Cc]))


class TestDnfTerms:
    def test_constraint(self):
        assert dnf_terms(A) == [frozenset([A])]

    def test_true_false(self):
        assert dnf_terms(TRUE) == [frozenset()]
        assert dnf_terms(FALSE) == []

    def test_distribution(self):
        q = conj([disj([A, B]), Cc])
        terms = dnf_terms(q)
        assert set(terms) == {frozenset([A, Cc]), frozenset([B, Cc])}

    def test_double_distribution(self):
        q = conj([disj([A, B]), disj([Cc, D])])
        assert len(dnf_terms(q)) == 4

    def test_idempotent_dedup(self):
        q = disj([A, A])  # smart constructor already dedupes...
        assert len(dnf_terms(q)) == 1
        # ...but distribution can also produce duplicate sets (build the
        # repeated conjunct with the raw node to bypass the dedup):
        q2 = And([disj([A, B]), disj([A, B])])
        terms = dnf_terms(q2)
        assert frozenset([A]) in terms and frozenset([A, B]) in terms
        assert len(terms) == 3  # {A}, {A,B}, {B} — not 4


class TestToDnf:
    def test_equivalence(self):
        cases = [
            "([a = 1] or [b = 1]) and [c = 1]",
            "([a = 1] or [b = 1]) and ([c = 1] or [d = 1])",
            "[a = 1] and ([b = 1] or ([c = 1] and [d = 1]))",
        ]
        for case in cases:
            q = parse_query(case)
            assert prop_equivalent(q, to_dnf(q))

    def test_shape_is_flat(self):
        q = parse_query("([a = 1] or [b = 1]) and ([c = 1] or [d = 1])")
        dnf = to_dnf(q)
        assert isinstance(dnf, Or)
        assert all(is_simple_conjunction(child) for child in dnf.children)

    def test_constants(self):
        assert to_dnf(TRUE) is TRUE
        assert to_dnf(FALSE) is FALSE


class TestTermCount:
    def test_matches_materialized_count_before_dedup(self):
        q = parse_query("([a = 1] or [b = 1]) and ([c = 1] or [d = 1])")
        assert dnf_term_count(q) == 4

    def test_exponential_growth(self):
        conjuncts = [disj([C(f"x{i}", "=", 1), C(f"y{i}", "=", 1)]) for i in range(20)]
        assert dnf_term_count(conj(conjuncts)) == 2**20

    def test_or_sums(self):
        assert dnf_term_count(disj([A, conj([B, Cc])])) == 2
