"""Tests for the relational engine (relation, eval, capabilities, source)."""

import pytest

from repro.core.ast import C, Constraint, attr, conj, disj
from repro.core.errors import CapabilityError, EvaluationError, SchemaError
from repro.core.parser import parse_query
from repro.engine.capabilities import Capability
from repro.engine.eval import RowEnv, evaluate, evaluate_row
from repro.engine.relation import Relation
from repro.engine.source import Source
from repro.text import TextCapability


class TestRelation:
    def test_insert_and_scan(self):
        rel = Relation("r", ("a", "b"))
        rel.insert({"a": 1, "b": 2})
        assert rel.rows() == [{"a": 1, "b": 2}]
        assert len(rel) == 1

    def test_schema_enforced(self):
        rel = Relation("r", ("a", "b"))
        with pytest.raises(SchemaError):
            rel.insert({"a": 1})
        with pytest.raises(SchemaError):
            rel.insert({"a": 1, "b": 2, "c": 3})

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "a"))

    def test_rows_is_a_copy(self):
        rel = Relation("r", ("a",), [{"a": 1}])
        rel.rows().append({"a": 2})
        assert len(rel) == 1


class TestRowEnv:
    def test_qualified_resolution(self):
        env = RowEnv({(("fac", "prof"), None): {"ln": "Ullman"}})
        row, attr_name = env.resolve(attr("fac.prof.ln"))
        assert row["ln"] == "Ullman" and attr_name == "ln"

    def test_indexed_resolution(self):
        env = RowEnv(
            {
                (("fac",), 1): {"ln": "A"},
                (("fac",), 2): {"ln": "B"},
            }
        )
        assert env.lookup(attr("fac[2].ln")) == "B"

    def test_unindexed_abbreviation_unique(self):
        env = RowEnv({(("fac",), 1): {"ln": "A"}})
        assert env.lookup(attr("fac.ln")) == "A"

    def test_unindexed_abbreviation_ambiguous(self):
        env = RowEnv({(("fac",), 1): {"ln": "A"}, (("fac",), 2): {"ln": "B"}})
        with pytest.raises(EvaluationError):
            env.lookup(attr("fac.ln"))

    def test_bare_attr_single_instance(self):
        env = RowEnv({((), None): {"author": "Clancy"}})
        assert env.lookup(attr("author")) == "Clancy"

    def test_unresolvable(self):
        env = RowEnv({(("fac",), None): {"ln": "A"}})
        with pytest.raises(EvaluationError):
            env.lookup(attr("pub.ln"))

    def test_missing_attribute(self):
        env = RowEnv({((), None): {"a": 1}})
        with pytest.raises(EvaluationError):
            env.lookup(attr("b"))


class TestEvaluate:
    def test_selection(self):
        assert evaluate_row(parse_query("[a = 1]"), {"a": 1})
        assert not evaluate_row(parse_query("[a = 1]"), {"a": 2})

    def test_boolean_structure(self):
        q = parse_query("([a = 1] or [b = 2]) and [c = 3]")
        assert evaluate_row(q, {"a": 0, "b": 2, "c": 3})
        assert not evaluate_row(q, {"a": 0, "b": 0, "c": 3})

    def test_join_across_instances(self):
        q = Constraint(attr("fac[1].ln"), "=", attr("fac[2].ln"))
        env_eq = RowEnv({(("fac",), 1): {"ln": "X"}, (("fac",), 2): {"ln": "X"}})
        env_ne = RowEnv({(("fac",), 1): {"ln": "X"}, (("fac",), 2): {"ln": "Y"}})
        assert evaluate(q, env_eq)
        assert not evaluate(q, env_ne)

    def test_virtual_attribute_dispatch(self):
        virtuals = {"double": lambda row, op, v: row["a"] * 2 == v}
        assert evaluate_row(parse_query("[double = 4]"), {"a": 2}, virtuals)
        assert not evaluate_row(parse_query("[double = 5]"), {"a": 2}, virtuals)


class TestCapability:
    CAP = Capability.of(
        selections=[("author", "="), ("ti", "contains")],
        joins=[("name", "au", "=")],
        text=TextCapability(supports_near=False),
    )

    def test_selection_support(self):
        assert self.CAP.supports(C("author", "=", "x"))
        assert not self.CAP.supports(C("author", "contains", "x"))
        assert not self.CAP.supports(C("subject", "=", "x"))

    def test_join_support_order_insensitive(self):
        j1 = Constraint(attr("a.name"), "=", attr("b.au"))
        j2 = Constraint(attr("b.au"), "=", attr("a.name"))
        assert self.CAP.supports(j1) and self.CAP.supports(j2)
        assert not self.CAP.supports(Constraint(attr("a.x"), "=", attr("b.y")))

    def test_text_connectives_checked(self):
        ok = parse_query("[ti contains a (and) b]")
        bad = parse_query("[ti contains a (near) b]")
        assert self.CAP.supports(next(iter(ok.constraints())))
        assert not self.CAP.supports(next(iter(bad.constraints())))

    def test_violations_and_check(self):
        q = parse_query('[author = "x"] and [subject = "y"]')
        bad = self.CAP.violations(q)
        assert [c.lhs.attr for c in bad] == ["subject"]
        with pytest.raises(CapabilityError):
            self.CAP.check(q)
        self.CAP.check(parse_query('[author = "x"]'))


class TestSource:
    def _source(self):
        rel = Relation("r", ("a", "b"), [{"a": 1, "b": 10}, {"a": 2, "b": 20}])
        cap = Capability.of(selections=[("a", "="), ("b", ">")])
        return Source("S", {"r": rel}, cap)

    def test_select_rows(self):
        src = self._source()
        assert src.select_rows("r", parse_query("[a = 2]")) == [{"a": 2, "b": 20}]

    def test_capability_enforced(self):
        src = self._source()
        with pytest.raises(CapabilityError):
            src.select_rows("r", parse_query("[a < 2]"))

    def test_unknown_relation(self):
        with pytest.raises(EvaluationError):
            self._source().relation("nope")

    def test_cross_product_select(self):
        rel1 = Relation("r1", ("x",), [{"x": 1}, {"x": 2}])
        rel2 = Relation("r2", ("y",), [{"y": 1}, {"y": 2}])
        cap = Capability.of(selections=[], joins=[("x", "y", "=")])
        src = Source("S", {"r1": rel1, "r2": rel2}, cap)
        q = Constraint(attr("v.r1.x"), "=", attr("v.r2.y"))
        out = src.select(
            {(("v", "r1"), None): "r1", (("v", "r2"), None): "r2"}, q
        )
        assert len(out) == 2  # (1,1) and (2,2)
