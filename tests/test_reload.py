"""Hot reload: MediationService.reload_spec, the reload op, and the
live-mutation bug sweep.

The contracts under test:

* :meth:`MediationService.reload_spec` atomically swaps a spec under a
  running service — new answers afterwards, exact invalidation
  counters, a no-op when the content digest is unchanged, and a
  :class:`VocabMapError` when no served source matches.
* The ``reload`` protocol op accepts inline specs and registry
  directories and returns one report per swapped spec.
* Regression (version-stamp collision): cache keys carry the content
  digest, so a restarted process that recreates a same-name spec with
  the same process-local version stamp but different rules can never be
  answered from another spec's cached translation.
* Regression (retired-spec pinning): after a reload the swapped-out
  spec — rule closures, compiled index, memos — is garbage, and
  actually collectible.
* Acceptance: 16 concurrent TCP clients across repeated
  publish/rollback/reload cycles lose zero responses and every response
  is bit-identical to a reference answer from exactly one spec version
  — never a blend.
"""

from __future__ import annotations

import copy
import gc
import itertools
import json
import socket
import threading
import weakref

import pytest

from repro.core.errors import VocabMapError
from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.obs.stats import builtin_mediator
from repro.perf import TranslationCache
from repro.registry import SpecRegistry
from repro.rules.declarative import spec_from_dict
from repro.serve import (
    MediationService,
    ServiceConfig,
    handle_line,
    resolve_reload_specs,
    serve_tcp,
)

QUERY = '[ln = "Clancy"]'

#: ``ln`` maps to ``author-word`` — distinguishable from the built-in
#: K_Amazon (``author``) and from WIDE below.
WORD = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author-word", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "variant: ln -> author-word",
        },
        {
            "name": "V2",
            "match": [{"attr": "publisher", "op": "=", "bind": "N"}],
            "where": [{"cond": "value_is", "vars": ["N"]}],
            "emit": {"attr": "publisher", "op": "=", "value": "$N"},
            "exact": True,
            "doc": "variant: publisher rename",
        },
    ],
}

#: ``ln`` maps to plain ``author`` and the publisher rule is gone.
WIDE = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "variant2: ln -> author",
        }
    ],
}


def make_service(**overrides) -> MediationService:
    mediator = builtin_mediator({"K_Amazon"})
    assert mediator is not None
    return MediationService(mediator, ServiceConfig(**overrides))


def answer(service: MediationService, query: str = QUERY) -> str:
    return service.translate(query)["Amazon"].mapping and str(
        service.translate(query)["Amazon"].mapping
    )


class TestReloadSpec:
    def test_reload_changes_subsequent_answers(self):
        service = make_service()
        before = str(service.translate(QUERY)["Amazon"].mapping)
        report = service.reload_spec(spec_from_dict(WORD))
        after = str(service.translate(QUERY)["Amazon"].mapping)
        assert report["changed"] is True
        assert report["sources"] == ["Amazon"]
        assert before != after
        assert "author-word" in after

    def test_same_digest_reload_is_a_noop_preserving_cache(self):
        service = make_service()
        service.reload_spec(spec_from_dict(WORD))
        service.translate(QUERY)
        cache = service.mediator.translation_cache
        size_before = cache.stats.size
        report = service.reload_spec(spec_from_dict(copy.deepcopy(WORD)))
        assert report["changed"] is False
        assert report["invalidated"] == 0
        assert cache.stats.size == size_before
        # The warmed entry still answers from cache.
        hits = cache.stats.hits
        service.translate(QUERY)
        assert cache.stats.hits == hits + 1

    def test_unknown_spec_name_raises_and_names_the_served_set(self):
        service = make_service()
        ghost = dict(WIDE, name="K_Ghost")
        with pytest.raises(VocabMapError, match="K_Ghost.*K_Amazon"):
            service.reload_spec(spec_from_dict(ghost))

    def test_invalidation_counter_is_exact(self):
        service = make_service()
        cache = service.mediator.translation_cache
        queries = [QUERY, '[ln = "King"]', '[publisher = "X"]']
        for query in queries:
            service.translate(query)
        warmed = cache.stats.size
        assert warmed == len(queries)
        invalidations_before = cache.stats.invalidations
        report = service.reload_spec(spec_from_dict(WORD))
        assert report["invalidated"] == warmed
        assert cache.stats.invalidations - invalidations_before == warmed

    def test_reload_counts_into_stats_and_fires_hooks(self):
        service = make_service()
        seen: list[str] = []
        service.reload_hooks.append(lambda spec: seen.append(spec.name))
        assert service.stats()["reloads"] == 0
        service.reload_spec(spec_from_dict(WORD))
        assert service.stats()["reloads"] == 1
        assert seen == ["K_Amazon"]
        # A digest no-op neither counts nor notifies.
        service.reload_spec(spec_from_dict(copy.deepcopy(WORD)))
        assert service.stats()["reloads"] == 1
        assert seen == ["K_Amazon"]

    def test_request_holding_the_old_spec_completes_against_it(self):
        # The swap replaces the table; a caller that captured the old
        # spec object keeps translating under the old rules, fresh index
        # and all.
        service = make_service()
        old_spec = service.mediator.specs["Amazon"]
        service.reload_spec(spec_from_dict(WORD))
        result = tdqm_translate(parse_query(QUERY), old_spec)
        assert "author-word" not in str(result.mapping)


class TestReloadProtocol:
    def test_reload_with_inline_spec(self):
        service = make_service()
        line = json.dumps({"id": 1, "op": "reload", "spec": WORD})
        response = json.loads(handle_line(service, line))
        assert response["ok"] is True
        assert response["id"] == 1
        (report,) = response["reload"]
        assert report["spec"] == "K_Amazon"
        assert report["changed"] is True

    def test_reload_from_registry_directory(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(WORD)
        service = make_service()
        line = json.dumps({"op": "reload", "registry": str(tmp_path)})
        response = json.loads(handle_line(service, line))
        assert response["ok"] is True
        after = str(service.translate(QUERY)["Amazon"].mapping)
        assert "author-word" in after

    def test_registry_rollback_then_reload_restores_prior_answers(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(WORD)
        registry.publish(WIDE)
        service = make_service()
        reload_line = json.dumps({"op": "reload", "registry": str(tmp_path)})
        handle_line(service, reload_line)
        wide_answer = str(service.translate(QUERY)["Amazon"].mapping)
        registry.rollback("K_Amazon")
        handle_line(service, reload_line)
        word_answer = str(service.translate(QUERY)["Amazon"].mapping)
        assert "author-word" in word_answer
        assert word_answer != wide_answer

    def test_bad_reload_requests_get_structured_errors(self, tmp_path):
        service = make_service()
        for request in (
            {"op": "reload"},
            {"op": "reload", "registry": str(tmp_path / "missing")},
            {"op": "reload", "specs": []},
            {"op": "reload", "specs": "nope"},
        ):
            response = json.loads(handle_line(service, json.dumps(request)))
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-request"

    def test_resolve_filters_registry_to_served_names(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(WORD)
        registry.publish(dict(WIDE, name="K_Other"))
        resolved = resolve_reload_specs(
            {"registry": str(tmp_path)}, served={"K_Amazon"}
        )
        assert [spec["name"] for spec in resolved] == ["K_Amazon"]
        with pytest.raises(ValueError, match="no active specification"):
            resolve_reload_specs({"registry": str(tmp_path)}, served={"K_Ghost"})


class TestVersionStampCollisionRegression:
    """Cache keys must carry the content digest, not just (name, version).

    ``MappingSpecification.version`` comes from a process-local counter:
    after a restart (or in a sibling worker) a *different* rule set can
    legitimately carry the same name and the same stamp.  Before the
    digest joined the key, a warm cache imported from such a process
    served the other spec's translations.
    """

    def test_recreated_spec_with_same_stamp_never_hits_stale(self, monkeypatch):
        import repro.rules.spec as spec_module

        cache = TranslationCache()
        query = parse_query(QUERY)

        monkeypatch.setattr(spec_module, "_VERSION_STAMPS", itertools.count(1))
        old = spec_from_dict(WORD)
        stale = cache.tdqm(query, old)

        # Simulate the restarted process: the stamp counter resets and a
        # spec with different rules lands on the same (name, version).
        monkeypatch.setattr(spec_module, "_VERSION_STAMPS", itertools.count(1))
        new = spec_from_dict(WIDE)
        assert (new.name, new.version) == (old.name, old.version)
        assert new.content_digest != old.content_digest

        fresh = cache.tdqm(query, new)
        direct = tdqm_translate(query, new)
        assert fresh.mapping == direct.mapping
        assert fresh.mapping != stale.mapping
        assert cache.stats.hits == 0  # both lookups were real misses

    def test_mutate_then_recreate_round_trip(self, monkeypatch):
        # The original report: mutate a spec (version bumps), recreate
        # the pre-mutation rule set in a "new process" (stamp collides
        # with the *mutated* version), translate — the digest must keep
        # the two rule sets apart.
        import repro.rules.spec as spec_module

        cache = TranslationCache()
        query = parse_query(QUERY)

        monkeypatch.setattr(spec_module, "_VERSION_STAMPS", itertools.count(1))
        spec = spec_from_dict(WORD)
        spec.remove_rule("V2")  # version bumps past the creation stamp
        mutated_version = spec.version
        cache.tdqm(query, spec)

        monkeypatch.setattr(
            spec_module, "_VERSION_STAMPS", itertools.count(mutated_version)
        )
        recreated = spec_from_dict(WIDE)
        assert (recreated.name, recreated.version) == (spec.name, mutated_version)

        result = cache.tdqm(query, recreated)
        assert result.mapping == tdqm_translate(query, recreated).mapping
        assert cache.stats.hits == 0


class TestRetiredSpecReleased:
    """A swapped-out spec must be collectible, closures and memos included."""

    def test_retired_spec_and_index_are_collectible(self):
        service = make_service()
        service.reload_spec(spec_from_dict(WORD))
        # Warm the compiled closures and the translation cache under the
        # spec that is about to be retired.
        service.translate(QUERY)
        retired = service.mediator.specs["Amazon"]
        witnesses = [
            weakref.ref(retired),
            weakref.ref(retired.compiled_index()),
        ]
        del retired
        service.reload_spec(spec_from_dict(WIDE))
        gc.collect()
        assert [ref() for ref in witnesses] == [None, None]

    def test_compiled_index_does_not_pin_its_spec(self):
        # The index<->spec reference must be weak on the index side:
        # with a strong back-reference the pair survives refcounting and
        # leaks until a full gc pass — and pins both under any gc-frozen
        # deployment.
        spec = spec_from_dict(WORD)
        index = spec.compiled_index()
        index.precompile()
        witness = weakref.ref(spec)
        del spec
        gc.collect()
        assert witness() is None
        from repro.core.errors import StaleIndexError

        with pytest.raises(StaleIndexError, match="retired"):
            index.check_fresh()


class TestReloadUnderLoad:
    """16 live TCP clients through repeated publish/rollback cycles."""

    CLIENT_THREADS = 16
    REQUESTS_PER_CLIENT = 40
    RELOAD_CYCLES = 6

    QUERIES = [
        QUERY,
        '[ln = "King"]',
        '[publisher = "Haddix"]',
        '[ln = "Clancy"] and [publisher = "Putnam"]',
    ]

    @staticmethod
    def canonical(response: dict) -> str:
        response = dict(response)
        response.pop("id", None)
        return json.dumps(response, sort_keys=True)

    def reference(self, payload: dict | None) -> dict[str, str]:
        """Canonical response per query for one spec version."""
        service = make_service()
        if payload is not None:
            service.reload_spec(spec_from_dict(payload))
        out = {}
        for query in self.QUERIES:
            line = json.dumps({"op": "translate", "query": query})
            out[query] = self.canonical(json.loads(handle_line(service, line)))
        return out

    def test_zero_lost_and_every_answer_from_exactly_one_version(self, tmp_path):
        references = {
            "builtin": self.reference(None),
            "word": self.reference(WORD),
            "wide": self.reference(WIDE),
        }
        allowed = {
            query: {ref[query] for ref in references.values()}
            for query in self.QUERIES
        }

        service = make_service()
        server = serve_tcp(service, port=0)
        host, port = server.server_address[:2]
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()

        registry = SpecRegistry(tmp_path)
        registry.publish(WORD)
        registry.publish(WIDE)

        failures: list[str] = []
        responded = [0] * self.CLIENT_THREADS
        stop = threading.Event()

        def drive(slot: int) -> None:
            with socket.create_connection((host, port), timeout=60.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                for i in range(self.REQUESTS_PER_CLIENT):
                    query = self.QUERIES[(slot + i) % len(self.QUERIES)]
                    request_id = f"{slot}-{i}"
                    handle.write(
                        json.dumps(
                            {"id": request_id, "op": "translate", "query": query}
                        )
                        + "\n"
                    )
                    handle.flush()
                    raw = handle.readline()
                    if not raw:
                        failures.append(f"client {slot}: connection dropped")
                        return
                    response = json.loads(raw)
                    if response.get("id") != request_id:
                        failures.append(f"client {slot}: id mismatch {response}")
                        return
                    if self.canonical(response) not in allowed[query]:
                        failures.append(
                            f"client {slot}: blended/unknown answer for "
                            f"{query!r}: {raw[:120]}"
                        )
                        return
                    responded[slot] += 1

        threads = [
            threading.Thread(target=drive, args=(slot,), daemon=True)
            for slot in range(self.CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()

        cache = service.mediator.translation_cache
        invalidations_before = cache.stats.invalidations
        reported_invalidated = 0
        reload_line = json.dumps({"op": "reload", "registry": str(tmp_path)})
        try:
            for cycle in range(self.RELOAD_CYCLES):
                if cycle % 2 == 0:
                    registry.rollback("K_Amazon", to_version=1)  # -> WORD
                else:
                    registry.rollback("K_Amazon", to_version=2)  # -> WIDE
                response = json.loads(handle_line(service, reload_line))
                assert response["ok"] is True
                reported_invalidated += sum(
                    report["invalidated"] for report in response["reload"]
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=120.0)
            server.shutdown()
            server.server_close()
            serve_thread.join(timeout=30.0)

        assert failures == []
        assert responded == [self.REQUESTS_PER_CLIENT] * self.CLIENT_THREADS
        # Counter exactness: every invalidated entry the reloads reported
        # is an invalidation the cache counted, and nothing else
        # invalidated entries behind the reports' back.
        assert (
            cache.stats.invalidations - invalidations_before == reported_invalidated
        )
        assert service.stats()["reloads"] == self.RELOAD_CYCLES
