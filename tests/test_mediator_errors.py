"""Error-path tests for the mediation pipeline."""

import pytest

from repro.core.ast import C, Constraint, attr
from repro.core.errors import EvaluationError, TranslationError
from repro.core.parser import parse_query
from repro.engine.sources_builtin import make_amazon, make_t1, make_t2
from repro.engine.views import BaseRef, ViewDef
from repro.mediator import Mediator, faculty_mediator
from repro.mediator.builtin import BOOK_ATTRS, _book_row
from repro.rules import K1, K2, K_AMAZON


class TestConstruction:
    def test_spec_for_unknown_source_rejected(self):
        with pytest.raises(TranslationError):
            Mediator(views={}, sources={}, specs={"ghost": K_AMAZON})

    def test_view_source_without_spec_rejected(self):
        amazon = make_amazon()
        book = ViewDef(
            name="book",
            attributes=BOOK_ATTRS,
            bases=(BaseRef("Amazon", "catalog"),),
            combine=_book_row,
        )
        with pytest.raises(TranslationError):
            Mediator(views={"book": book}, sources={"Amazon": amazon}, specs={})


class TestQueryAnalysis:
    def test_unknown_view_rejected(self, fac_mediator):
        with pytest.raises(EvaluationError):
            fac_mediator.answer_direct(parse_query('[ghost.ln = "x"]'))

    def test_unqualified_ref_ambiguous_with_two_views(self, fac_mediator):
        with pytest.raises(EvaluationError):
            fac_mediator.answer_direct(parse_query('[ln = "x"]'))

    def test_view_instances_collects_join_sides(self, fac_mediator):
        q = Constraint(attr("fac[1].ln"), "=", attr("fac[2].ln"))
        instances = fac_mediator.view_instances(q)
        assert instances == [("fac", 1), ("fac", 2)]

    def test_constant_query_single_view(self, amazon_mediator):
        instances = amazon_mediator.view_instances(parse_query("true"))
        assert instances == [("book", None)]


class TestConstantQueries:
    def test_true_returns_everything(self, amazon_mediator):
        direct = amazon_mediator.answer_direct(parse_query("true"))
        mediated = amazon_mediator.answer_mediated(parse_query("true"))
        assert len(direct) == len(mediated.rows) == 7

    def test_false_returns_nothing(self, amazon_mediator):
        assert amazon_mediator.answer_direct(parse_query("false")) == []
        assert amazon_mediator.answer_mediated(parse_query("false")).rows == []

    def test_unsatisfiable_is_equivalent(self, amazon_mediator):
        q = parse_query('[ln = "Nobody"] and [ln = "Else"]')
        assert amazon_mediator.check_equivalence(q)


class TestAnswerShape:
    def test_mediated_answer_len(self, amazon_mediator):
        answer = amazon_mediator.answer_mediated(parse_query('[ln = "Clancy"]'))
        assert len(answer) == len(answer.rows) == 3

    def test_plan_property_single_choice(self, amazon_mediator):
        answer = amazon_mediator.answer_mediated(parse_query('[ln = "Clancy"]'))
        assert answer.plan is answer.plans[0]
        assert len(answer.plans) == 1

    def test_faculty_empty_join_result(self):
        # prof data disjoint from aubib: fac view is empty, queries agree.
        med = faculty_mediator(prof=[{"ln": "Zed", "fn": "Zed", "dept": 230}])
        q = parse_query("[fac.dept = cs]")
        assert med.answer_direct(q) == []
        assert med.answer_mediated(q).rows == []

    def test_plan_with_zero_choices_raises_value_error(self):
        from repro.mediator import MediatedAnswer

        answer = MediatedAnswer([], [])
        with pytest.raises(ValueError, match="no plans"):
            answer.plan

    def test_plan_error_is_not_index_error(self):
        from repro.mediator import MediatedAnswer

        try:
            MediatedAnswer([], []).plan
        except IndexError:  # pragma: no cover - the regression being guarded
            pytest.fail("zero-choice plan access must raise ValueError, not IndexError")
        except ValueError:
            pass
