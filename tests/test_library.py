"""Tests for the built-in rule libraries against the paper's figures."""

from repro.core.ast import C, Constraint, Or, attr
from repro.core.matching import Matcher
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.scm import scm
from repro.core.values import Month, Point, Range, Year
from repro.rules import K1, K2, K_AMAZON, K_CLBOOKS, K_MAP, builtin_specifications
from repro.workloads.paper_queries import figure2_q1, figure2_q2


def rule_names(matcher_result):
    return sorted(m.rule_name for m in matcher_result)


class TestKAmazonMatchings:
    """Example 4's matching trace for Q̂1 and the Q̂2 counterpart."""

    def test_q1_matchings(self):
        matcher = K_AMAZON.matcher()
        found = matcher.matchings(figure2_q1().constraints())
        assert rule_names(found) == ["R3", "R4", "R6", "R7", "R8"]
        by_rule = {m.rule_name: m for m in found}
        assert len(by_rule["R6"].constraints) == 2  # {f_y, f_m}
        assert by_rule["R7"].constraints < by_rule["R6"].constraints

    def test_q2_matchings(self):
        matcher = K_AMAZON.matcher()
        found = matcher.matchings(figure2_q2().constraints())
        assert rule_names(found) == ["R1", "R1", "R5", "R9"]

    def test_r1_simple_attributes(self):
        matcher = K_AMAZON.matcher()
        found = matcher.matchings([C("id-no", "=", "081815181Y")])
        assert rule_names(found) == ["R1"]
        assert found[0].emission == C("isbn", "=", "081815181Y")
        assert found[0].exact

    def test_r2_combines_names(self):
        found = K_AMAZON.matcher().matchings(
            [C("ln", "=", "Clancy"), C("fn", "=", "Tom")]
        )
        by_rule = {m.rule_name: m for m in found}
        assert by_rule["R2"].emission == C("author", "=", "Clancy, Tom")
        assert by_rule["R3"].emission == C("author", "=", "Clancy")

    def test_r4_rewrites_near(self):
        q = parse_query("[ti contains java (near) jdk]")
        found = K_AMAZON.matcher().matchings(q.constraints())
        emission = found[0].emission
        assert emission.lhs == attr("ti-word")
        assert str(emission.rhs) == "java (and) jdk"
        assert not found[0].exact  # relaxed

    def test_r4_exact_without_near(self):
        q = parse_query("[ti contains java (and) jdk]")
        found = K_AMAZON.matcher().matchings(q.constraints())
        assert found[0].exact

    def test_r6_r7_dates(self):
        found = K_AMAZON.matcher().matchings(
            [C("pyear", "=", 1997), C("pmonth", "=", 5)]
        )
        by_rule = {m.rule_name: m for m in found}
        assert by_rule["R6"].emission == C("pdate", "during", Month(1997, 5))
        assert by_rule["R7"].emission == C("pdate", "during", Year(1997))

    def test_r8_kwd_disjunction(self):
        q = parse_query("[kwd contains www]")
        found = K_AMAZON.matcher().matchings(q.constraints())
        emission = found[0].emission
        assert isinstance(emission, Or)
        attrs = {child.lhs.attr for child in emission.children}
        assert attrs == {"ti-word", "subject-word"}

    def test_r9_category(self):
        found = K_AMAZON.matcher().matchings([C("category", "=", "D.3")])
        assert found[0].emission == C("subject", "=", "programming")

    def test_r9_unknown_category_vetoed(self):
        assert K_AMAZON.matcher().matchings([C("category", "=", "Z.9")]) == []

    def test_fn_alone_has_no_mapping(self):
        # Example 2: S(f3) = True because Amazon needs the last name.
        assert K_AMAZON.matcher().matchings([C("fn", "=", "Tom")]) == []


class TestFigure2:
    """The full Figure 2 table: SCM(Q̂1) = S1 and SCM(Q̂2) = S2."""

    def test_s1(self):
        s1 = scm(figure2_q1(), K_AMAZON)
        assert to_text(s1) == (
            '[author = "Smith"] and [ti-word contains java (and) jdk] and '
            "[pdate during May/97] and "
            "([ti-word contains www] or [subject-word contains www])"
        )

    def test_s2(self):
        s2 = scm(figure2_q2(), K_AMAZON)
        assert to_text(s2) == (
            '[publisher = "oreilly"] and [title starts "jdk for java"] and '
            '[subject = "programming"] and [isbn = "081815181Y"]'
        )


class TestKClbooks:
    def test_name_constraints_relax_to_contains(self):
        q = parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        mapping = scm(q, K_CLBOOKS)
        assert to_text(mapping) == (
            "[author contains clancy] and [author contains tom]"
        )

    def test_title_keeps_near(self):
        q = parse_query("[ti contains java (near) jdk]")
        found = K_CLBOOKS.matcher().matchings(q.constraints())
        assert str(found[0].emission.rhs) == "java (near) jdk"
        assert found[0].exact


class TestK1:
    def test_bib_relaxes_near(self):
        q = parse_query("[fac.bib contains data (near) mining]")
        found = K1.matcher().matchings(q.constraints())
        emission = found[0].emission
        assert emission.lhs == attr("fac.aubib.bib")
        assert str(emission.rhs) == "data (and) mining"

    def test_join_pair_maps_to_one_join(self):
        q = parse_query("[fac.ln = pub.ln] and [fac.fn = pub.fn]")
        found = K1.matcher().matchings(q.constraints())
        joins = [m for m in found if m.rule_name == "R5"]
        assert len(joins) == 1
        assert joins[0].emission == Constraint(
            attr("fac.aubib.name"), "=", attr("pub.paper.au")
        )

    def test_ln_fn_pair_same_view(self):
        q = parse_query('[fac.ln = "Clancy"] and [fac.fn = "Tom"]')
        found = {m.rule_name: m for m in K1.matcher().matchings(q.constraints())}
        assert found["R4"].emission == C("fac.aubib.name", "=", "Clancy, Tom")

    def test_ln_fn_across_views_not_combined(self):
        q = parse_query('[fac.ln = "Clancy"] and [pub.fn = "Tom"]')
        names = rule_names(K1.matcher().matchings(q.constraints()))
        assert "R4" not in names  # different views: not a pair

    def test_pub_ti_passthrough(self):
        q = parse_query('[pub.ti = "Mediators for the Web"]')
        found = K1.matcher().matchings(q.constraints())
        assert found[0].emission.lhs == attr("pub.paper.ti")

    def test_dept_unknown_to_t1(self):
        q = parse_query("[fac.dept = cs]")
        assert K1.matcher().matchings(q.constraints()) == []


class TestK2:
    def test_name_equality_exact(self):
        q = parse_query('[fac.ln = "Ullman"]')
        found = K2.matcher().matchings(q.constraints())
        assert found[0].emission == C("fac.prof.ln", "=", "Ullman")
        assert found[0].exact

    def test_dept_code(self):
        q = parse_query("[fac.dept = cs]")
        found = K2.matcher().matchings(q.constraints())
        assert found[0].emission == C("fac.prof.dept", "=", 230)

    def test_unknown_dept_vetoed(self):
        q = parse_query("[fac.dept = astrology]")
        assert K2.matcher().matchings(q.constraints()) == []

    def test_self_join(self):
        q = parse_query("[fac[1].ln = fac[2].ln]")
        found = K2.matcher().matchings(q.constraints())
        assert found[0].emission == Constraint(
            attr("fac[1].prof.ln"), "=", attr("fac[2].prof.ln")
        )

    def test_pub_constraints_invisible(self):
        q = parse_query('[pub.ti = "anything"]')
        assert K2.matcher().matchings(q.constraints()) == []


class TestKMap:
    """Example 8's matchings: Rm1..Rm4 over f1..f4."""

    def test_all_four_matchings(self):
        q = parse_query(
            "[x_min = 10] and [x_max = 30] and [y_min = 20] and [y_max = 40]"
        )
        found = K_MAP.matcher().matchings(q.constraints())
        emissions = {m.rule_name: m.emission for m in found}
        assert emissions["Rm1"] == C("X_range", "=", Range(10, 30))
        assert emissions["Rm2"] == C("Y_range", "=", Range(20, 40))
        assert emissions["Rm3"] == C("C_ll", "=", Point(10, 20))
        assert emissions["Rm4"] == C("C_ur", "=", Point(30, 40))

    def test_lone_bound_has_no_mapping(self):
        assert K_MAP.matcher().matchings([C("x_min", "=", 10)]) == []

    def test_mixed_pair_has_no_mapping(self):
        # f1 ∧ f4 (x_min + y_max) matches no rule — Example 8's second case.
        found = K_MAP.matcher().matchings(
            [C("x_min", "=", 10), C("y_max", "=", 40)]
        )
        assert found == []


class TestBuiltinIndex:
    def test_all_specs_listed(self):
        specs = builtin_specifications()
        assert set(specs) == {"K_Amazon", "K_Clbooks", "K1", "K2", "K_map"}
