"""Unit tests for the compiled translate hot path (repro.perf.compile).

Three layers under test:

* **interning** (``repro.perf.intern``) — hash-consing collapses equal
  shapes to one weakly-held object per process, never changing equality;
* **compiled rules** (``repro.perf.compile``) — per-rule closures with a
  per-assignment memo, bit-identical to the interpreted ``match_rule``;
* **the ``interpret=`` escape hatch** — threads from the CLI through the
  Mediator down to ``Matcher``, bypassing every compiled-path memo so it
  can serve as the equivalence oracle.
"""

from __future__ import annotations

import gc

import pytest

from repro.cli import main
from repro.core.ast import C, conj, disj
from repro.core.errors import RuleError, StaleIndexError
from repro.core.explain import explain_translation
from repro.core.matching import Matcher, RejectMatch, match_rule
from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.perf import (
    TranslationCache,
    clear_intern_table,
    compile_rule,
    intern_constraint,
    intern_query,
    intern_stats,
    is_interned,
)
from repro.rules import K_AMAZON, builtin_specifications
from repro.rules.dsl import V, cpat, rule, table_lookup, value_is
from repro.workloads.generator import (
    simple_conjunction,
    synthetic_spec,
    vocabulary,
)
from repro.workloads.paper_queries import example1_query, figure2_q1, qbook

ATTRS = vocabulary(8)


def _fresh_spec(name="K_compile_test"):
    return synthetic_spec(
        groups=[("a0", "a1")], singletons=ATTRS, name=name
    )


class TestIntern:
    def setup_method(self):
        clear_intern_table()

    def test_equal_parses_become_one_object(self):
        text = '[ln = "Clancy"] and ([fn = "Tom"] or [pyear = 1994])'
        first = intern_query(parse_query(text))
        second = intern_query(parse_query(text))
        assert first is second
        assert is_interned(first)

    def test_interning_preserves_equality(self):
        query = parse_query('[a = 1] and not [b = 2]')
        assert intern_query(query) == query

    def test_subtrees_are_shared(self):
        shared = '[ln = "Clancy"] or [fn = "Tom"]'
        left = intern_query(parse_query(f'{shared} and [pyear = 1994]'))
        right = intern_query(parse_query(f'{shared} and [pyear = 2001]'))
        assert left.children[0] is right.children[0]

    def test_commuted_trees_stay_distinct(self):
        # a ∧ b and b ∧ a are equal *theories* but different trees; the
        # interner must not conflate them (that is the fingerprint's job).
        ab = intern_query(conj([C("a", "=", 1), C("b", "=", 2)]))
        ba = intern_query(conj([C("b", "=", 2), C("a", "=", 1)]))
        assert ab is not ba

    def test_constraint_interning(self):
        one = intern_constraint(C("ln", "=", "Clancy"))
        two = intern_constraint(C("ln", "=", "Clancy"))
        assert one is two

    def test_table_is_weak(self):
        query = intern_query(parse_query('[zz_unique = 901] and [zz_other = 902]'))
        nodes_live = intern_stats()["nodes"]
        del query
        gc.collect()
        assert intern_stats()["nodes"] < nodes_live

    def test_stats_count_hits_and_misses(self):
        before = intern_stats()
        # Hold the first result: the table is weak, so a discarded node
        # would be collected before the second call could hit it.
        held = intern_query(C("fresh_attr", "=", "v1"))
        again = intern_query(C("fresh_attr", "=", "v1"))
        assert again is held
        after = intern_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1


class TestCompiledRule:
    def test_single_pattern_bit_identical(self):
        spec = _fresh_spec()
        target = spec.get_rule("R_a3")
        universe = [C("a3", "=", 7), C("a4", "=", 1), C("a3", "=", 9)]
        compiled = compile_rule(target)
        pools = [[c for c in universe if c.lhs.attr == "a3"]]
        expect = match_rule(target, universe)
        got = compiled.matchings(pools)
        assert [str(m.emission) for m in got] == [str(m.emission) for m in expect]
        assert [m.constraints for m in got] == [m.constraints for m in expect]
        assert [m.exact for m in got] == [m.exact for m in expect]

    def test_multi_pattern_bit_identical(self):
        spec = _fresh_spec()
        pair = spec.get_rule("R_a0_a1")
        universe = [C("a0", "=", 3), C("a1", "=", 4), C("a0", "=", 5)]
        compiled = compile_rule(pair)
        pools = [
            [c for c in universe if c.lhs.attr == "a0"],
            [c for c in universe if c.lhs.attr == "a1"],
        ]
        expect = match_rule(pair, universe)
        got = compiled.matchings(pools)
        assert [str(m.emission) for m in got] == [str(m.emission) for m in expect]

    def test_memo_serves_repeat_assignments(self):
        compiled = compile_rule(_fresh_spec().get_rule("R_a2"))
        pool = [C("a2", "=", 1)]
        first = compiled.matchings([pool])
        second = compiled.matchings([pool])
        assert compiled.memo_size() == 1
        # The memoized Matching is the same object — a dictionary hit.
        assert second[0] is first[0]

    def test_rejected_match_is_memoized_as_no_match(self):
        veto = rule(
            "R_veto",
            patterns=[cpat("a0", "=", V("X"))],
            let={"Y": table_lookup({}, lambda b: b["X"])},  # always missing
            emit=lambda b: C("t", "=", b["Y"]),
        )
        compiled = compile_rule(veto)
        pool = [C("a0", "=", 1)]
        assert compiled.matchings([pool]) == []
        assert compiled.matchings([pool]) == []
        assert compiled.memo_size() == 1

    def test_bad_emission_raises_rule_error(self):
        bad = rule(
            "R_bad",
            patterns=[cpat("a0", "=", V("X"))],
            emit=lambda b: "not a query",  # type: ignore[arg-type,return-value]
        )
        with pytest.raises(RuleError):
            compile_rule(bad).matchings([[C("a0", "=", 1)]])


class TestMatcherModes:
    def test_mode_property(self):
        spec = _fresh_spec()
        assert spec.matcher().mode == "compiled"
        assert spec.matcher(interpret=True).mode == "interpreted"
        assert Matcher(spec.rules).mode == "interpreted"

    def test_compiled_equals_interpreted_on_builtins(self):
        queries = [example1_query(), figure2_q1(), qbook()]
        for spec in builtin_specifications().values():
            for query in queries:
                compiled = tdqm_translate(query, spec.matcher())
                oracle = tdqm_translate(query, spec.matcher(interpret=True))
                assert compiled == oracle, (spec.name, str(query))

    def test_compiled_matcher_goes_stale_on_mutation(self):
        spec = _fresh_spec("K_stale_compiled")
        matcher = spec.matcher()
        universe = frozenset([C("a0", "=", 1)])
        matcher.potential(universe)
        template = spec.get_rule("R_a2")
        spec.add_rule(
            rule("extra", patterns=template.patterns, emit=template.emit)
        )
        # Growing the universe forces an index probe, which must refuse.
        with pytest.raises(StaleIndexError):
            matcher.potential(universe | {C("a1", "=", 2)})
        # A matcher rebuilt from the spec sees the new rule set.
        assert spec.matcher().potential(universe)

    def test_prematch_memo_round_trip(self):
        spec = _fresh_spec("K_prematch")
        index = spec.compiled_index()
        universe = frozenset(simple_conjunction(ATTRS, 0).constraints())
        first = Matcher(spec.rules, index=index).potential(universe)
        assert index.prematch_get(universe) is not None
        second = Matcher(spec.rules, index=index).potential(universe)
        assert [str(m.emission) for m in second] == [
            str(m.emission) for m in first
        ]

    def test_interpreted_dispatch_skips_prematch_memo(self):
        spec = _fresh_spec("K_prematch_oracle")
        index = spec.compiled_index()
        universe = frozenset([C("a5", "=", 3)])
        Matcher(spec.rules, index=index, interpret=True).potential(universe)
        # The oracle must not share memoized state with the compiled path.
        assert index.prematch_get(universe) is None

    def test_precompile_builds_every_closure(self):
        spec = _fresh_spec("K_precompile")
        index = spec.compiled_index()
        assert index.precompile() == len(spec.rules)


class TestInterpretEscapeHatch:
    QUERY = '[ln = "Clancy"] and [fn = "Tom"]'

    def test_tdqm_interpret_is_bit_identical(self):
        query = parse_query(self.QUERY)
        assert tdqm_translate(query, K_AMAZON, interpret=True) == tdqm_translate(
            query, K_AMAZON
        )

    def test_interpret_bypasses_translation_cache(self):
        query = parse_query(self.QUERY)
        cache = TranslationCache()
        tdqm_translate(query, K_AMAZON, cache=cache, interpret=True)
        tdqm_translate(query, K_AMAZON, cache=cache, interpret=True)
        stats = cache.stats
        assert stats.hits == 0 and stats.misses == 0 and stats.size == 0

    def test_mediator_interpret_flag_propagates(self):
        from repro.obs.stats import builtin_mediator

        baseline = builtin_mediator({"K_Amazon"})
        oracle = builtin_mediator({"K_Amazon"})
        oracle.interpret = True
        from repro.resilience import ResilienceConfig

        assert oracle.with_resilience(ResilienceConfig()).interpret is True
        got = oracle.translate_many([self.QUERY])[0]
        want = baseline.translate_many([self.QUERY])[0]
        assert {name: r.mapping for name, r in got.items()} == {
            name: r.mapping for name, r in want.items()
        }

    def test_explain_labels_dispatch_mode(self):
        query = parse_query(self.QUERY)
        compiled = explain_translation(query, K_AMAZON)
        interpreted = explain_translation(query, K_AMAZON, interpret=True)
        assert "dispatch     : compiled" in compiled
        assert "dispatch     : interpreted" in interpreted
        assert "compiled dispatch" in compiled
        assert "interpreted dispatch" in interpreted

        # Identical apart from the path labels and trace timings.
        def normalize(text):
            import re

            return re.sub(r"\d+\.\d+", "X", text.replace("compiled", "interpreted"))

        assert normalize(compiled) == normalize(interpreted)

    def test_cli_interpret_flag(self, capsys):
        assert main(["translate", "K_Amazon", self.QUERY]) == 0
        compiled_out = capsys.readouterr().out
        assert main(["translate", "K_Amazon", self.QUERY, "--interpret"]) == 0
        assert capsys.readouterr().out == compiled_out
        assert main(["explain", "K_Amazon", self.QUERY, "--interpret"]) == 0
        assert "interpreted" in capsys.readouterr().out


class TestStatsCounters:
    def test_stats_surface_compile_counters(self):
        from repro.obs.export import counters_table
        from repro.obs.stats import collect_stats

        # A value no other test translates: K_Amazon's index is a
        # process-wide singleton, so a shared universe would be served
        # from the prematch memo and skip the dispatch counters.
        report = collect_stats(
            '[ln = "StatsCounterProbe"] and [fn = "Unique"]',
            {"K_Amazon": builtin_specifications()["K_Amazon"]},
        )
        table = "\n".join(counters_table(report.tracer))
        assert "perf.compile.dispatches" in table
        assert "perf.compile.prematch.misses" in table
