"""Tests for the simulated sources (repro.engine.sources_builtin)."""

import pytest

from repro.core.errors import CapabilityError
from repro.core.parser import parse_query
from repro.engine.sources_builtin import (
    make_amazon,
    make_clbooks,
    make_map_source,
    make_t1,
    make_t2,
)


class TestAmazon:
    def test_author_full_name_match(self):
        src = make_amazon()
        rows = src.select_rows("catalog", parse_query('[author = "Clancy, Tom"]'))
        assert {r["title"] for r in rows} == {
            "WWW and Web Services",
            "Hunt for Data Mining",
        }

    def test_author_last_name_match(self):
        # "Clancy" matches every Clancy (Example 2's semantics) but not
        # "Clancy, Joe Tom" being matched as plain "clancy, joe tom".
        src = make_amazon()
        rows = src.select_rows("catalog", parse_query('[author = "Clancy"]'))
        assert {r["author"] for r in rows} == {"Clancy, Tom", "Clancy, Joe Tom"}

    def test_author_exact_beats_partial(self):
        src = make_amazon()
        rows = src.select_rows("catalog", parse_query('[author = "Smith"]'))
        # Both "Smith" and "Smith, John" have last name Smith.
        assert len(rows) == 2

    def test_ti_word_search(self):
        src = make_amazon()
        rows = src.select_rows(
            "catalog", parse_query("[ti-word contains java (and) jdk]")
        )
        assert {r["title"] for r in rows} == {"The Java JDK Handbook", "JDK for Java"}

    def test_pdate_during_month(self):
        src = make_amazon()
        rows = src.select_rows("catalog", parse_query("[pdate during May/97]"))
        assert all(r["year"] == 1997 and r["month"] == 5 for r in rows)
        assert len(rows) == 4

    def test_pdate_during_year(self):
        src = make_amazon()
        rows = src.select_rows("catalog", parse_query("[pdate during 97]"))
        assert all(r["year"] == 1997 for r in rows)

    def test_title_starts(self):
        src = make_amazon()
        rows = src.select_rows("catalog", parse_query('[title starts "jdk for"]'))
        assert [r["title"] for r in rows] == ["JDK for Java"]

    def test_near_rejected_by_capability(self):
        src = make_amazon()
        with pytest.raises(CapabilityError):
            src.select_rows(
                "catalog", parse_query("[ti-word contains java (near) jdk]")
            )

    def test_mediator_vocabulary_rejected(self):
        src = make_amazon()
        with pytest.raises(CapabilityError):
            src.select_rows("catalog", parse_query('[ln = "Clancy"]'))


class TestClbooks:
    def test_author_word_search(self):
        src = make_clbooks()
        rows = src.select_rows("catalog", parse_query("[author contains tom]"))
        # Word matching reaches first names and middle names alike.
        assert {r["author"] for r in rows} == {
            "Clancy, Tom", "Klancy, Tom", "Clancy, Joe Tom",
        }

    def test_example1_false_positives(self):
        # Q_c = [author contains Tom] ∧ [author contains Clancy] keeps
        # "Clancy, Joe Tom" — the false positive Example 1 predicts.
        src = make_clbooks()
        q = parse_query("[author contains tom] and [author contains clancy]")
        rows = src.select_rows("catalog", q)
        assert {r["author"] for r in rows} == {"Clancy, Tom", "Clancy, Joe Tom"}

    def test_equality_not_supported(self):
        src = make_clbooks()
        with pytest.raises(CapabilityError):
            src.select_rows("catalog", parse_query('[author = "Clancy, Tom"]'))


class TestT1T2:
    def test_bib_keyword_search(self):
        src = make_t1()
        q = parse_query("[bib contains data (and) mining]")
        rows = src.select_rows("aubib", q)
        assert len(rows) == 3

    def test_bib_near_rejected(self):
        src = make_t1()
        with pytest.raises(CapabilityError):
            src.select_rows("aubib", parse_query("[bib contains data (near) mining]"))

    def test_prof_dept_code(self):
        src = make_t2()
        rows = src.select_rows("prof", parse_query("[dept = 230]"))
        assert {r["ln"] for r in rows} == {"Ullman", "Molina", "Han"}


class TestMapSource:
    def test_range_query(self):
        src = make_map_source()
        q = parse_query("[X_range = (10:30)] and [Y_range = (20:40)]")
        rows = src.select_rows("points", q)
        assert all(10 <= r["x"] <= 30 and 20 <= r["y"] <= 40 for r in rows)
        assert len(rows) == 9

    def test_corner_query_is_open_region(self):
        # Figure 9: C_ll selects the whole shaded quadrant.
        src = make_map_source()
        rows = src.select_rows("points", parse_query("[C_ll = (10, 20)]"))
        assert all(r["x"] >= 10 and r["y"] >= 20 for r in rows)
        corner_count = len(rows)
        rect = src.select_rows(
            "points", parse_query("[X_range = (10:30)] and [Y_range = (20:40)]")
        )
        assert corner_count > len(rect)

    def test_figure9_witness_point(self):
        # The point (50, 30) is in g3 but not in g1 g2.
        src = make_map_source()
        in_corner = src.select_rows("points", parse_query("[C_ll = (10, 20)]"))
        in_rect = src.select_rows(
            "points", parse_query("[X_range = (10:30)] and [Y_range = (20:40)]")
        )
        ids_corner = {r["id"] for r in in_corner}
        ids_rect = {r["id"] for r in in_rect}
        assert "p50_30" in ids_corner and "p50_30" not in ids_rect
        assert ids_rect <= ids_corner
