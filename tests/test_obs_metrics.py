"""Unit and property tests for ``repro.obs.metrics`` (+ export edges).

The percentile math is the part that has to be *provably* right — the
histogram stores bucket counts, never samples, so the tests pin the
estimator against the exact nearest-rank percentile of the raw samples
with hypothesis: the estimate must land in the same bucket as the true
value and inside the observed ``[min, max]``.  The rest covers the
rolling windows, the scorecards, the slow-query log's bounded eviction,
the process-global install/tee, and the ``obs/export.py`` edge cases
(nested attrs, empty tracer, Prometheus round trip).
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.obs.export import parse_prometheus, render_prometheus, span_to_dict
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    SlowQueryLog,
    SourceScorecard,
)


class FakeClock:
    """A manually advanced monotonic clock for deterministic windows."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRollingWindow:
    def test_accumulates_within_window(self):
        window = RollingWindow(width=1.0, slots=10)
        window.add(3, now=100.0)
        window.add(2, now=100.5)
        window.add(5, now=104.0)
        assert window.total(now=104.0) == 10

    def test_old_slots_age_out(self):
        window = RollingWindow(width=1.0, slots=5)
        window.add(7, now=100.0)
        assert window.total(now=104.9) == 7
        assert window.total(now=105.1) == 0

    def test_slot_reuse_resets_stale_epoch(self):
        window = RollingWindow(width=1.0, slots=2)
        window.add(9, now=100.0)
        window.add(1, now=102.0)  # same ring slot, two epochs later
        assert window.total(now=102.0) == 1

    def test_rate_is_total_over_span(self):
        window = RollingWindow(width=1.0, slots=10)
        window.add(20, now=50.0)
        assert window.rate(now=50.0) == pytest.approx(2.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RollingWindow(width=0, slots=5)
        with pytest.raises(ValueError):
            RollingWindow(width=1.0, slots=0)


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = Histogram()
        for value in (0.001, 0.003, 0.2):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.204)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.2)
        assert histogram.mean == pytest.approx(0.068)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(0.1, 0.1))

    def test_single_sample_all_percentiles_equal_it(self):
        histogram = Histogram()
        histogram.observe(0.0042)
        for q in (0, 50, 95, 99, 100):
            assert histogram.percentile(q) == pytest.approx(0.0042)

    def test_overflow_bucket_clamps_to_observed_max(self):
        histogram = Histogram(bounds=(0.001, 0.01))
        histogram.observe(5.0)  # beyond the last bound
        assert histogram.percentile(99) == pytest.approx(5.0)

    def test_summary_buckets_are_cumulative(self):
        histogram = Histogram(bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 7.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert [b["count"] for b in summary["buckets"]] == [1, 2, 3, 4]
        assert summary["buckets"][-1]["le"] == "+Inf"
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


def _true_nearest_rank(samples: list, q: float) -> float:
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _bucket_index(bounds: tuple, value: float) -> int:
    for index, bound in enumerate(bounds):
        if value <= bound:
            return index
    return len(bounds)


latency_samples = st.lists(
    st.floats(min_value=1e-6, max_value=20.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestHistogramProperties:
    @settings(max_examples=200, deadline=None)
    @given(samples=latency_samples, q=st.floats(min_value=0.0, max_value=100.0))
    def test_estimate_lands_in_true_percentile_bucket(self, samples, q):
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        true_value = _true_nearest_rank(samples, q)
        estimate = histogram.percentile(q)
        assert min(samples) <= estimate <= max(samples)
        assert _bucket_index(histogram.bounds, estimate) == _bucket_index(
            histogram.bounds, true_value
        )

    @settings(max_examples=100, deadline=None)
    @given(samples=latency_samples)
    def test_percentiles_are_monotone_in_q(self, samples):
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        quantiles = [histogram.percentile(q) for q in (0, 25, 50, 75, 95, 99, 100)]
        assert quantiles == sorted(quantiles)

    @settings(max_examples=100, deadline=None)
    @given(samples=latency_samples)
    def test_count_and_sum_are_exact(self, samples):
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        assert histogram.count == len(samples)
        assert histogram.total == pytest.approx(sum(samples))
        assert sum(histogram.counts) == len(samples)


class TestSlowQueryLog:
    def test_bounded_eviction_keeps_the_slowest(self):
        log = SlowQueryLog(capacity=2)
        log.record("fast", "translate", 0.001)
        log.record("slow", "translate", 1.0)
        log.record("medium", "mediate", 0.5)
        top = log.top(10)
        assert [entry["fingerprint"] for entry in top] == ["slow", "medium"]
        assert len(log) == 2

    def test_repeat_fingerprint_aggregates(self):
        log = SlowQueryLog(capacity=4)
        log.record("fp", "translate", 0.2, query="[ln = \"x\"]")
        log.record("fp", "translate", 0.4)
        (entry,) = log.top(1)
        assert entry["count"] == 2
        assert entry["max_ms"] == pytest.approx(400.0)
        assert entry["mean_ms"] == pytest.approx(300.0)
        assert entry["query"] == "[ln = \"x\"]"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestSourceScorecard:
    def test_status_accounting(self):
        card = SourceScorecard("amazon")
        card.record(seconds=0.01, now=1.0, status="ok", rows=3)
        card.record(seconds=0.02, now=1.1, status="retried", retries=2, rows=1)
        card.record(seconds=0.5, now=1.2, status="failed", error="boom")
        card.record(seconds=0.3, now=1.3, status="timed-out")
        card.record(seconds=0.0, now=1.4, status="skipped-open-circuit",
                    breaker_state="open")
        snapshot = card.snapshot(now=1.5)
        assert snapshot["calls"] == 5
        assert snapshot["ok"] == 2
        assert snapshot["failures"] == 3
        assert snapshot["timeouts"] == 1
        assert snapshot["skipped_open_circuit"] == 1
        assert snapshot["retries"] == 2
        assert snapshot["rows"] == 4
        assert snapshot["breaker_state"] == "open"
        assert snapshot["last_error"] == "boom"
        assert snapshot["error_rate"] == pytest.approx(0.6)
        assert snapshot["window"]["calls"] == 5
        assert snapshot["window"]["error_rate"] == pytest.approx(0.6)


class TestMetricsRegistry:
    def test_counters_total_and_window(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock, window_width=1.0, window_slots=10)
        registry.count("serve.requests", 4)
        clock.advance(60.0)  # window ages out, total persists
        registry.count("serve.requests")
        assert registry.counter_total("serve.requests") == 5
        assert registry.window_total("serve.requests") == 1

    def test_gauge_and_gauge_max(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.gauge("state", "closed")
        registry.gauge_max("high_water", 3)
        registry.gauge_max("high_water", 2)
        snapshot = registry.snapshot()
        assert snapshot["gauges"] == {"state": "closed", "high_water": 3}

    def test_record_request_feeds_both_histograms_and_slowlog(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.record_request("translate", 0.25, fingerprint="fp", query="q")
        per_op = registry.histogram("serve.translate.latency")
        overall = registry.histogram("serve.request.latency")
        assert per_op is not None and per_op.count == 1
        assert overall is not None and overall.count == 1
        assert registry.slowlog_top(1)[0]["fingerprint"] == "fp"

    def test_record_request_default_op_observes_once(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.record_request("request", 0.1)
        histogram = registry.histogram("serve.request.latency")
        assert histogram is not None and histogram.count == 1

    def test_record_source_outcome_duck_types(self):
        from repro.resilience import SourceOutcome

        registry = MetricsRegistry(clock=FakeClock())
        registry.record_source_outcome(
            SourceOutcome(
                source="amazon", status="retried", attempts=2, retries=1,
                rows=7, elapsed=0.05, breaker_state="closed",
            )
        )
        (card,) = registry.scorecards_snapshot()
        assert card["source"] == "amazon"
        assert card["ok"] == 1
        assert card["retries"] == 1
        assert card["rows"] == 7
        assert card["breaker_state"] == "closed"

    def test_concurrent_counts_are_exact(self):
        registry = MetricsRegistry()
        threads = [
            threading.Thread(
                target=lambda: [registry.count("hits") for _ in range(500)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_total("hits") == 4000

    def test_snapshot_shape(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.count("a")
        registry.observe("lat", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"]["total"] == 1
        assert snapshot["histograms"]["lat"]["count"] == 1
        assert "uptime_seconds" in snapshot and "window_seconds" in snapshot


class TestInstallAndTee:
    def test_hooks_tee_into_installed_registry_without_tracer(self):
        registry = MetricsRegistry(clock=FakeClock())
        with obs.installed(registry):
            assert obs.recording()
            assert not obs.enabled()
            obs.count("serve.requests", 2)
            obs.gauge("depth", 5)
            obs.gauge_max("high", 1.5)
        assert registry.counter_total("serve.requests") == 2
        assert registry.snapshot()["gauges"] == {"depth": 5, "high": 1.5}
        assert obs.metrics_sink() is None

    def test_tracer_and_registry_both_record(self):
        registry = MetricsRegistry(clock=FakeClock())
        with obs.installed(registry), obs.tracing() as tracer:
            obs.count("x", 3)
        assert tracer.counters["x"] == 3
        assert registry.counter_total("x") == 3

    def test_installed_restores_previous_registry(self):
        outer = MetricsRegistry(clock=FakeClock())
        inner = MetricsRegistry(clock=FakeClock())
        with obs.installed(outer):
            with obs.installed(inner):
                obs.count("n")
            obs.count("n")
            assert obs.active_registry() is outer
        assert inner.counter_total("n") == 1
        assert outer.counter_total("n") == 1

    def test_install_uninstall(self):
        registry = obs.install(MetricsRegistry(clock=FakeClock()))
        try:
            assert obs.active_registry() is registry
        finally:
            obs.uninstall()
        assert obs.active_registry() is None

    def test_record_outcome_feeds_scorecards_with_no_tracer(self):
        from repro.resilience import SourceOutcome
        from repro.resilience.adapter import record_outcome

        registry = MetricsRegistry(clock=FakeClock())
        with obs.installed(registry):
            record_outcome(
                SourceOutcome(
                    source="clbooks", status="failed", attempts=3, retries=2,
                    rows=0, elapsed=0.4, error="down", breaker_state="open",
                )
            )
        (card,) = registry.scorecards_snapshot()
        assert card["failures"] == 1
        assert card["retries"] == 2
        assert card["breaker_state"] == "open"
        # the resilience.* counters tee in too, tracer or no tracer
        assert registry.counter_total("resilience.calls") == 1
        assert registry.counter_total("resilience.retries") == 2
        assert registry.counter_total("resilience.failures") == 1


class TestExportEdgeCases:
    def test_span_to_dict_nested_and_non_plain_attrs(self):
        with obs.tracing() as tracer:
            with obs.span(
                "stage",
                nested={"inner": [1, {"deep": object()}]},
                tags={"b", "a"},
                plain=7,
            ):
                pass
        data = span_to_dict(tracer.root)
        attrs = data["children"][0]["attrs"]
        assert attrs["plain"] == 7
        assert attrs["nested"]["inner"][0] == 1
        assert isinstance(attrs["nested"]["inner"][1]["deep"], str)
        assert attrs["tags"] == ["a", "b"]  # sets render sorted for determinism

    def test_render_report_empty_tracer(self):
        with obs.tracing() as tracer:
            pass
        report = obs.render_report(tracer)
        assert "spans:" in report
        assert "(no counters recorded)" in report

    def test_prometheus_round_trip(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        registry.count("serve.requests", 5)
        registry.gauge("perf.cache.hit_rate", 0.75)
        registry.gauge("breaker", "half-open")
        registry.observe("serve.request.latency", 0.003)
        registry.observe("serve.request.latency", 0.3)
        registry.record_source_call(
            "amazon", 0.02, status="ok", rows=4, breaker_state="closed"
        )
        text = render_prometheus(registry)
        samples = parse_prometheus(text)
        assert samples[("repro_serve_requests_total", ())] == 5
        assert samples[("repro_perf_cache_hit_rate", ())] == pytest.approx(0.75)
        assert samples[("repro_breaker_info", (("value", "half-open"),))] == 1
        assert samples[("repro_serve_request_latency_seconds_count", ())] == 2
        assert samples[
            ("repro_serve_request_latency_seconds_bucket", (("le", "+Inf"),))
        ] == 2
        assert samples[
            ("repro_source_calls_total", (("source", "amazon"),))
        ] == 1
        assert samples[
            ("repro_source_rows_total", (("source", "amazon"),))
        ] == 4
        assert samples[
            (
                "repro_source_latency_seconds_count",
                (("source", "amazon"),),
            )
        ] == 1
        # bucket series for the labelled source histogram parse as well
        bucket_keys = [
            key for key in samples
            if key[0] == "repro_source_latency_seconds_bucket"
        ]
        assert len(bucket_keys) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not exposition\n")
