"""Unit tests for the query parser (repro.core.parser)."""

import pytest

from repro.core.ast import And, AttrRef, Constraint, Or, TRUE, FALSE, attr
from repro.core.errors import ParseError
from repro.core.parser import parse_period, parse_query
from repro.core.values import Month, Point, Range, Year
from repro.text.patterns import AndPat, NearPat, Word


class TestConstraints:
    def test_string_value(self):
        q = parse_query('[ln = "Clancy"]')
        assert isinstance(q, Constraint)
        assert q.lhs == attr("ln")
        assert q.op == "="
        assert q.rhs == "Clancy"

    def test_integer_value(self):
        assert parse_query("[pyear = 1997]").rhs == 1997

    def test_float_value(self):
        assert parse_query("[price <= 19.99]").rhs == 19.99

    def test_negative_number(self):
        assert parse_query("[delta = -5]").rhs == -5

    def test_bare_identifier_is_string(self):
        q = parse_query("[fac.dept = cs]")
        assert q.rhs == "cs"

    def test_join_requires_qualification(self):
        q = parse_query("[fac.ln = pub.ln]")
        assert isinstance(q.rhs, AttrRef)
        assert q.rhs == attr("pub.ln")

    def test_indexed_join(self):
        q = parse_query("[fac[1].ln = fac[2].ln]")
        assert q.lhs == attr("fac[1].ln")
        assert q.rhs == attr("fac[2].ln")

    def test_contains_pattern(self):
        q = parse_query("[ti contains java (near) jdk]")
        assert isinstance(q.rhs, NearPat)

    def test_contains_single_word(self):
        q = parse_query("[kwd contains www]")
        assert q.rhs == Word("www")

    def test_contains_and_symbol(self):
        q = parse_query("[bib contains data (and) mining]")
        assert isinstance(q.rhs, AndPat)

    def test_during_month(self):
        q = parse_query("[pdate during May/97]")
        assert q.rhs == Month(1997, 5)

    def test_during_year(self):
        q = parse_query("[pdate during 1997]")
        assert q.rhs == Year(1997)

    def test_range_value(self):
        q = parse_query("[X_range = (10:30)]")
        assert q.rhs == Range(10, 30)

    def test_point_value(self):
        q = parse_query("[C_ll = (10, 20)]")
        assert q.rhs == Point(10, 20)

    def test_in_collection(self):
        q = parse_query('[dept in ("cs", "ee")]')
        assert q.rhs == ("cs", "ee")

    def test_hyphenated_attribute(self):
        q = parse_query('[id-no = "081815181Y"]')
        assert q.lhs == attr("id-no")


class TestStructure:
    def test_and(self):
        q = parse_query('[a = 1] and [b = 2]')
        assert isinstance(q, And)
        assert len(q.children) == 2

    def test_or_precedence(self):
        # and binds tighter than or
        q = parse_query("[a = 1] or [b = 2] and [c = 3]")
        assert isinstance(q, Or)
        assert isinstance(q.children[1], And)

    def test_parentheses(self):
        q = parse_query("([a = 1] or [b = 2]) and [c = 3]")
        assert isinstance(q, And)
        assert isinstance(q.children[0], Or)

    def test_constants(self):
        assert parse_query("true") is TRUE
        assert parse_query("false") is FALSE

    def test_flattening(self):
        q = parse_query("[a = 1] and [b = 2] and [c = 3]")
        assert isinstance(q, And)
        assert len(q.children) == 3

    def test_case_insensitive_keywords(self):
        q = parse_query("[a = 1] AND [b = 2] OR [c = 3]")
        assert isinstance(q, Or)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "[ln = ]",
            "[= x]",
            "[ln ~ 5]",
            "[ln = 5",
            "([a = 1] and [b = 2]",
            "[a = 1] garbage",
            "[pdate during Mayonnaise/97]",
            "[x in 5]",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_error_carries_position(self):
        try:
            parse_query("[a = 1] and")
        except ParseError as exc:
            assert exc.position is not None
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestParsePeriod:
    def test_named_month(self):
        assert parse_period("May/97") == Month(1997, 5)
        assert parse_period("jun/05") == Month(2005, 6)

    def test_numeric_month(self):
        assert parse_period("5/1997") == Month(1997, 5)

    def test_two_digit_year_window(self):
        assert parse_period("97") == Year(1997)
        assert parse_period("05") == Year(2005)

    def test_four_digit_year(self):
        assert parse_period("1997") == Year(1997)

    def test_bad_period(self):
        with pytest.raises(ParseError):
            parse_period("sometime")
