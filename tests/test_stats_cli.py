"""Tests for the observability surfaces: ``repro stats``, ``--json``
output on translate/filter, ``--trace``/``--stats`` flags, and the
counters section of ``explain_translation``.

The golden-file test pins the full human-readable ``repro stats`` report
for Example 6's Q_book (Figure 7) with wall-times normalised, so any
change to the span tree shape or the counter set shows up as a diff.
"""

import json
import pathlib
import re

import pytest

from repro.cli import main
from repro.core.explain import explain_translation
from repro.core.json_io import query_from_json
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.rules import K_AMAZON, K_CLBOOKS
from repro.workloads.paper_queries import qbook

QBOOK = to_text(qbook())
GOLDEN = pathlib.Path(__file__).parent / "golden" / "stats_qbook.txt"


def _normalize_times(text: str) -> str:
    return re.sub(r"\d+\.\d+ms", "X.XXXms", text)


class TestStatsCommand:
    def test_qbook_golden(self, capsys):
        # The golden pins a *cold-start* run.  K_Amazon's compiled index
        # is a process-wide singleton whose prematch memo other tests
        # may have warmed for this very query; detach it so the counter
        # set (perf.compile.*) matches a fresh process.
        object.__setattr__(K_AMAZON, "_compiled_index", None)
        assert main(["stats", "K_Amazon", QBOOK]) == 0
        got = _normalize_times(capsys.readouterr().out)
        assert got == GOLDEN.read_text()

    def test_qbook_counters_json(self, capsys):
        assert main(["stats", "K_Amazon", QBOOK, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        # Example 6 / Figure 7: the paper's term counts for Q_book.
        assert data["gauges"]["query.dnf_terms"] == 6
        assert data["counters"]["tdqm.disjunctivize_calls"] == 5
        assert data["counters"]["tdqm.disjunctivize_terms"] == 10
        assert data["counters"]["scm.submatchings_suppressed"] == 15
        assert data["counters"]["filter.residue_conjuncts"] == 0
        # End-to-end execution against the simulated store ran too.
        assert data["rows"] == 2
        assert data["counters"]["source.rows_scanned"] == 7
        assert data["mappings"]["K_Amazon"]["exact"] is True

    def test_json_span_tree_has_stage_timings(self, capsys):
        assert main(["stats", "K_Amazon", '[ln = "Clancy"]', "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        tree = data["span_tree"]
        assert tree["name"] == "repro.stats"
        stages = [child["name"] for child in tree["children"]]
        assert stages[:3] == ["parse", "normalize", "translate"]
        assert "build_filter" in stages
        assert all(child["elapsed_ms"] >= 0.0 for child in tree["children"])

    def test_mapping_json_round_trips(self, capsys):
        assert main(["stats", "K_Amazon", QBOOK, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        mapping = data["mappings"]["K_Amazon"]
        assert to_text(query_from_json(mapping["json"])) == mapping["text"]
        assert to_text(query_from_json(data["filter"]["json"])) == data["filter"]["text"]

    def test_no_execute_skips_mediation(self, capsys):
        assert main(["stats", "K_Amazon", QBOOK, "--json", "--no-execute"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rows"] is None
        assert "mediator.rows_emitted" not in data["counters"]

    def test_multi_spec_faculty(self, capsys):
        query = "[fac.bib contains data (near) mining] and [fac.dept = cs]"
        assert main(["stats", "K1,K2", query]) == 0
        out = capsys.readouterr().out
        assert "S(K1)" in out and "S(K2)" in out
        assert "rows = " in out  # K1/K2 map to the built-in faculty mediator

    def test_unknown_spec_combination_translates_only(self, capsys):
        # K_Amazon + K1 is no built-in scenario: no execution, still a report.
        assert main(["stats", "K_Amazon,K1", '[ln = "Clancy"]']) == 0
        out = capsys.readouterr().out
        assert "rows = " not in out
        assert "spans:" in out


class TestJsonFlags:
    def test_translate_json(self, capsys):
        code = main(["translate", "K_Amazon", '[ln = "Clancy"] and [fn = "Tom"]', "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mapping_text"] == '[author = "Clancy, Tom"]'
        assert data["exact"] is True
        assert to_text(query_from_json(data["mapping"])) == data["mapping_text"]

    def test_translate_json_with_counters(self, capsys):
        code = main(["translate", "K_Amazon", '[ln = "Clancy"]', "--json", "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["counters"]["scm.calls"] >= 1
        assert "counters:" in captured.err

    def test_filter_json(self, capsys):
        query = "[fac.bib contains data (near) mining] and [fac.dept = cs]"
        assert main(["filter", "K1,K2", query, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["mappings"]) == {"K1", "K2"}
        assert data["mappings"]["K2"]["text"] == "[fac.prof.dept = 230]"
        assert (
            to_text(query_from_json(data["filter"]["json"])) == data["filter"]["text"]
        )


class TestObsFlags:
    def test_trace_prints_span_tree_to_stderr(self, capsys):
        args = ["translate", "K_Amazon", '[ln = "Clancy"] and [fn = "Tom"]', "--trace"]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == '[author = "Clancy, Tom"]'
        assert "spans:" in captured.err
        assert "repro.translate" in captured.err
        assert re.search(r"tdqm\s.*\d+\.\d+ms", captured.err)

    def test_stats_prints_counters_to_stderr(self, capsys):
        assert main(["filter", "K1,K2", "[fac.dept = cs]", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "counters:" in captured.err
        assert "filter.residue_conjuncts" in captured.err

    def test_flags_do_not_change_stdout(self, capsys):
        plain = main(["translate", "K_Amazon", QBOOK])
        out_plain = capsys.readouterr().out
        traced = main(["translate", "K_Amazon", QBOOK, "--trace", "--stats"])
        out_traced = capsys.readouterr().out
        assert plain == traced == 0
        assert out_plain == out_traced


class TestExplainCounters:
    """``explain_translation`` ends with a real traced counters section."""

    def test_counters_section_present(self):
        text = explain_translation(parse_query('[ln = "Clancy"]'), K_AMAZON)
        assert "counters  :" in text
        assert "ms traced" in text
        assert "scm.calls" in text

    @pytest.mark.parametrize("spec", [K_AMAZON, K_CLBOOKS], ids=lambda s: s.name)
    def test_federation_query_counters(self, spec):
        # The acses.com union view answers each component with its own
        # spec; explain must work (with counters) under both vocabularies.
        query = parse_query('([ln = "Clancy"] or [ln = "Smith"]) and [pyear = 1997]')
        text = explain_translation(query, spec)
        assert "counters  :" in text
        assert "tdqm.case1_or" in text
        assert "scm.calls" in text

    def test_qbook_counter_values(self):
        text = explain_translation(qbook(), K_AMAZON)
        assert re.search(r"tdqm\.disjunctivize_calls\s+1\b", text)
        assert re.search(r"psafe\.blocks\s+2\b", text)
