"""Tests for the reference-[20] rewrite extensions: stopwords, bounded
proximity windows, and the MATCH_ALL collapse."""

import pytest

from repro.core.ast import TRUE, C
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import tdqm
from repro.rules.dsl import V, cpat, rule
from repro.rules.library import _rewriter, _contains_or_true
from repro.rules.spec import MappingSpecification
from repro.text import (
    MATCH_ALL,
    MatchAll,
    TextCapability,
    matches,
    parse_pattern,
    rewrite_text_pattern,
)
from repro.text.patterns import AndPat, NearPat, OrPat, Word


class TestMatchAll:
    def test_matches_everything(self):
        assert matches(MATCH_ALL, "anything at all")
        assert matches(MATCH_ALL, "")

    def test_inside_compounds(self):
        assert matches(AndPat((MATCH_ALL, Word("java"))), "java time")
        assert not matches(AndPat((MATCH_ALL, Word("java"))), "no match")
        assert matches(OrPat((MATCH_ALL, Word("java"))), "no match")

    def test_str(self):
        assert str(MATCH_ALL) == "*any*"


class TestStopwords:
    CAP = TextCapability(stopwords=frozenset({"the", "of", "a"}))

    def test_stopword_word_becomes_match_all(self):
        result = rewrite_text_pattern(Word("the"), self.CAP)
        assert isinstance(result.pattern, MatchAll)
        assert not result.exact

    def test_and_drops_stopword_parts(self):
        result = rewrite_text_pattern(parse_pattern("the (and) java"), self.CAP)
        assert result.pattern == Word("java")
        assert not result.exact

    def test_or_with_stopword_collapses_entirely(self):
        # Dropping only the stopword disjunct would NARROW the query.
        result = rewrite_text_pattern(parse_pattern("the (or) java"), self.CAP)
        assert isinstance(result.pattern, MatchAll)
        assert not result.exact

    def test_near_drops_stopword_anchor(self):
        result = rewrite_text_pattern(parse_pattern("java (near) the"), self.CAP)
        assert result.pattern == Word("java")

    def test_all_stopwords_collapse(self):
        result = rewrite_text_pattern(parse_pattern("the (and) of"), self.CAP)
        assert isinstance(result.pattern, MatchAll)

    def test_phrase_skips_stopwords(self):
        cap = TextCapability(supports_phrase=False, stopwords=frozenset({"of"}))
        result = rewrite_text_pattern(parse_pattern('"mining of data"'), cap)
        assert isinstance(result.pattern, NearPat)
        assert result.pattern.words() == frozenset({"mining", "data"})

    def test_subsumption_property(self):
        texts = ["the java guide", "java", "guide to the rest", ""]
        for raw in ("the (and) java", "java (near) the", "the (or) java"):
            original = parse_pattern(raw)
            relaxed = rewrite_text_pattern(original, self.CAP).pattern
            for text in texts:
                if matches(original, text):
                    assert matches(relaxed, text), (raw, text)


class TestBoundedWindow:
    def test_wide_near_relaxes_to_and(self):
        cap = TextCapability(max_near_window=3)
        result = rewrite_text_pattern(parse_pattern("java (near/8) jdk"), cap)
        assert isinstance(result.pattern, AndPat)
        assert not result.exact

    def test_narrow_near_kept_exact(self):
        cap = TextCapability(max_near_window=3)
        result = rewrite_text_pattern(parse_pattern("java (near/2) jdk"), cap)
        assert isinstance(result.pattern, NearPat)
        assert result.exact

    def test_boundary_window(self):
        cap = TextCapability(max_near_window=5)
        result = rewrite_text_pattern(parse_pattern("java (near/5) jdk"), cap)
        assert isinstance(result.pattern, NearPat)
        assert result.exact


class TestRuleIntegration:
    def _spec(self, capability):
        return MappingSpecification(
            "K_txt",
            "txt",
            rules=(
                rule(
                    "Rt",
                    patterns=[cpat("body", "contains", V("P1"))],
                    let={"RW": _rewriter(capability)},
                    emit=lambda b: _contains_or_true("text", b["RW"]),
                    exact=lambda b: b["RW"].exact,
                ),
            ),
        )

    def test_all_stopword_pattern_maps_to_true(self):
        spec = self._spec(TextCapability(stopwords=frozenset({"the"})))
        q = parse_query("[body contains the]")
        assert tdqm(q, spec) is TRUE

    def test_partial_stopword_pattern_keeps_rest(self):
        spec = self._spec(TextCapability(stopwords=frozenset({"the"})))
        q = parse_query("[body contains the (and) java]")
        assert to_text(tdqm(q, spec)) == "[text contains java]"

    def test_or_with_stopword_maps_to_true(self):
        spec = self._spec(TextCapability(stopwords=frozenset({"the"})))
        q = parse_query("[body contains the (or) java]")
        assert tdqm(q, spec) is TRUE
