"""Live-server telemetry: the ISSUE's acceptance scenario end to end.

A real ``serve_tcp`` server, constructed with a metrics registry and a
resilient mediator with deterministic fault injection, is driven in two
phases:

1. **sequential mediates** against a source whose first five calls fail
   (``FaultPolicy(fail=5)``) with ``retries=2`` — so the per-call
   outcomes are fully determined: call 1 exhausts its three attempts
   (``failed``, 2 retries), call 2 fails twice then succeeds
   (``retried``, 2 retries), calls 3–4 are clean;
2. **concurrent translates** from eight client threads over their own
   TCP connections.

Every assertion below is interleaving-independent: counter totals,
scorecard status counts, histogram counts, and slow-query-log counts
are exact sums no matter how the pool schedules the work.  The admin
protocol ops (``metrics``/``sources``/``slowlog``/``health``) are then
exercised over the same live socket — including the Prometheus
rendering, parsed back and checked against the same exact totals — and
``repro top`` runs against the live server through the real CLI.
"""

from __future__ import annotations

import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.mediator import bookstore_mediator
from repro.obs.export import parse_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    BreakerPolicy,
    FaultPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.serve import MediationService, ServiceConfig, serve_tcp

MEDIATE_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    '[ln = "Smith"] and [pyear = 1997]',
]
TRANSLATE_QUERIES = [
    '[ln = "Updike"]',
    '[fn = "Jane"]',
    "[pyear = 1996]",
    "[pmonth = 3]",
]
N_THREADS = 8
PER_THREAD = 5


def _faulty_service(registry: MetricsRegistry) -> MediationService:
    mediator = bookstore_mediator("amazon").with_resilience(
        ResilienceConfig(
            retry=RetryPolicy(retries=2, backoff_base=0.0, jitter=0.0),
            # Keep the breaker out of the accounting: the fault schedule,
            # not circuit state, should determine every outcome.
            breaker=BreakerPolicy(failure_threshold=100),
            fault_policies={"Amazon": FaultPolicy(fail=5)},
        )
    )
    return MediationService(
        mediator,
        ServiceConfig(max_concurrency=8, queue_depth=256),
        metrics=registry,
    )


def _ask(handle, request: dict) -> dict:
    handle.write(json.dumps(request) + "\n")
    handle.flush()
    return json.loads(handle.readline())


class TestLiveTelemetry:
    @pytest.fixture()
    def live_server(self):
        registry = MetricsRegistry()
        service = _faulty_service(registry)
        server = serve_tcp(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with obs.installed(registry):
            yield registry, host, port
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)

    def _drive(self, host: str, port: int) -> None:
        # Phase 1: sequential mediates — deterministic fault accounting.
        with socket.create_connection((host, port), timeout=10.0) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            complete = [
                _ask(handle, {"op": "mediate", "query": query})["complete"]
                for query in MEDIATE_QUERIES
            ]
        # Call 1 exhausts its retry budget -> partial; 2-4 recover/succeed.
        assert complete == [False, True, True, True]

        # Phase 2: concurrent translates, one connection per worker.
        def translate_worker(index: int) -> int:
            query = TRANSLATE_QUERIES[index % len(TRANSLATE_QUERIES)]
            with socket.create_connection((host, port), timeout=10.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                return sum(
                    _ask(handle, {"op": "translate", "query": query})["ok"]
                    for _ in range(PER_THREAD)
                )

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            succeeded = sum(pool.map(translate_worker, range(N_THREADS)))
        assert succeeded == N_THREADS * PER_THREAD

    def test_exact_totals_and_admin_ops(self, live_server):
        registry, host, port = live_server
        self._drive(host, port)
        total_requests = len(MEDIATE_QUERIES) + N_THREADS * PER_THREAD

        # -- exact registry totals (interleaving-independent) ---------------
        assert registry.counter_total("serve.requests") == total_requests
        assert registry.counter_total("serve.rejected") == 0
        assert registry.counter_total("resilience.calls") == 4
        assert registry.counter_total("resilience.retries") == 4
        assert registry.counter_total("resilience.failures") == 1
        assert registry.counter_total("resilience.timeouts") == 0

        (card,) = registry.scorecards_snapshot()
        assert card["source"] == "Amazon"
        assert card["calls"] == 4
        assert card["ok"] == 3
        assert card["failures"] == 1
        assert card["retries"] == 4
        assert card["timeouts"] == 0
        assert card["skipped_open_circuit"] == 0
        assert card["breaker_state"] == "closed"
        assert card["error_rate"] == pytest.approx(0.25)
        assert card["latency_ms"]["p50"] <= card["latency_ms"]["p95"]
        assert card["latency_ms"]["p95"] <= card["latency_ms"]["p99"]

        overall = registry.histogram("serve.request.latency")
        assert overall is not None and overall.count == total_requests
        per_op = registry.histogram("serve.translate.latency")
        assert per_op is not None and per_op.count == N_THREADS * PER_THREAD
        mediate_hist = registry.histogram("serve.mediate.latency")
        assert mediate_hist is not None and mediate_hist.count == len(MEDIATE_QUERIES)

        entries = registry.slowlog_top(50)
        assert len(entries) == len(MEDIATE_QUERIES) + len(TRANSLATE_QUERIES)
        assert sum(entry["count"] for entry in entries) == total_requests
        by_op = {entry["op"] for entry in entries}
        assert by_op == {"mediate", "translate"}
        translate_counts = sorted(
            entry["count"] for entry in entries if entry["op"] == "translate"
        )
        # 8 threads over 4 queries -> exactly two threads x 5 requests each.
        assert translate_counts == [10, 10, 10, 10]

        # -- the four admin ops over the live socket ------------------------
        with socket.create_connection((host, port), timeout=10.0) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            health = _ask(handle, {"op": "health"})
            metrics = _ask(handle, {"op": "metrics"})
            sources = _ask(handle, {"op": "sources"})
            slowlog = _ask(handle, {"op": "slowlog", "n": 3})
            prometheus = _ask(handle, {"op": "metrics", "format": "prometheus"})

        assert health["ok"] and health["health"]["status"] == "ok"
        assert health["health"]["requests"] == total_requests
        assert health["health"]["sources"]["Amazon"]["breaker_state"] == "closed"

        assert metrics["ok"]
        snapshot = metrics["metrics"]
        assert snapshot["counters"]["serve.requests"]["total"] == total_requests
        histogram = snapshot["histograms"]["serve.request.latency"]
        assert histogram["count"] == total_requests
        assert histogram["p50"] <= histogram["p95"] <= histogram["p99"]
        # cache effectiveness gauges are derived at snapshot time
        assert 0.0 <= snapshot["gauges"]["perf.cache.hit_rate"] <= 1.0

        assert sources["ok"]
        (wire_card,) = sources["sources"]
        assert wire_card["calls"] == 4 and wire_card["retries"] == 4

        assert slowlog["ok"] and len(slowlog["slowlog"]) == 3
        worst = slowlog["slowlog"][0]
        assert worst["max_ms"] >= slowlog["slowlog"][-1]["max_ms"]

        assert prometheus["ok"] and prometheus["format"] == "prometheus"
        samples = parse_prometheus(prometheus["text"])
        assert samples[("repro_serve_requests_total", ())] == total_requests
        assert samples[("repro_resilience_retries_total", ())] == 4
        assert samples[
            ("repro_source_calls_total", (("source", "Amazon"),))
        ] == 4
        assert samples[
            ("repro_serve_request_latency_seconds_count", ())
        ] == total_requests

    def test_repro_top_against_live_server(self, live_server, capsys):
        registry, host, port = live_server
        self._drive(host, port)
        address = f"{host}:{port}"

        assert cli_main(["top", address]) == 0
        text = capsys.readouterr().out
        assert "status: ok" in text
        assert "Amazon" in text
        assert "slowest fingerprints" in text
        assert "p95" in text

        assert cli_main(["top", address, "--json", "-n", "2"]) == 0
        combined = json.loads(capsys.readouterr().out)
        total_requests = len(MEDIATE_QUERIES) + N_THREADS * PER_THREAD
        assert combined["health"]["requests"] == total_requests
        assert len(combined["slowlog"]) == 2
        assert combined["sources"][0]["source"] == "Amazon"

    def test_repro_top_without_metrics(self, capsys):
        service = MediationService(bookstore_mediator("amazon"))
        server = serve_tcp(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert cli_main(["top", f"{host}:{port}", "--json"]) == 0
            combined = json.loads(capsys.readouterr().out)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
        assert combined["health"]["metrics_enabled"] is False
        assert combined["metrics"] is None
        assert combined["sources"] is None
        assert combined["slowlog"] is None

    def test_top_unreachable_address_fails_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["top", "127.0.0.1:9"])  # discard port; nothing listens
        assert "cannot reach" in str(excinfo.value)

    def test_metrics_ops_disabled_without_registry(self):
        from repro.serve import handle_request

        service = MediationService(bookstore_mediator("amazon"))
        for op in ("metrics", "sources", "slowlog"):
            response = handle_request(service, {"op": op})
            assert response["ok"] is False
            assert response["error"]["type"] == "metrics-disabled"
        health = handle_request(service, {"op": "health"})
        assert health["ok"] and health["health"]["metrics_enabled"] is False
