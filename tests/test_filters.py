"""Tests for filter-query generation (repro.core.filters) — Eq. 2/3."""

from repro.core.ast import TRUE, C, conj
from repro.core.filters import build_filter, translate_for_sources
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.rules import K1, K2, K_AMAZON, K_CLBOOKS
from repro.workloads.paper_queries import example1_query, example3_query


class TestExample1:
    def test_amazon_filter_empty(self):
        # R2 translates the ln+fn pair exactly: nothing left to filter.
        plan = build_filter(example1_query(), {"Amazon": K_AMAZON})
        assert plan.filter is TRUE
        assert to_text(plan.mappings["Amazon"]) == '[author = "Clancy, Tom"]'

    def test_clbooks_filter_is_whole_query(self):
        # The word-containment relaxation forces redoing Q as a filter.
        plan = build_filter(example1_query(), {"Clbooks": K_CLBOOKS})
        assert plan.filter == plan.query


class TestExample3:
    def test_filter_is_exactly_c(self):
        plan = build_filter(example3_query(), {"T1": K1, "T2": K2})
        assert to_text(plan.filter) == "[fac.bib contains data (near) mining]"

    def test_source_mappings(self):
        plan = build_filter(example3_query(), {"T1": K1, "T2": K2})
        # The T1 mapping carries the relaxed bib search plus the name join.
        t1 = to_text(plan.mappings["T1"])
        assert "fac.aubib.bib contains data (and) mining" in t1
        assert "fac.aubib.name = pub.paper.au" in t1
        assert to_text(plan.mappings["T2"]) == "[fac.prof.dept = 230]"


class TestBlockLevelExactness:
    def test_dependent_pair_dropped_together(self):
        q = parse_query('[ln = "Clancy"] and [fn = "Tom"] and [kwd contains www]')
        plan = build_filter(q, {"Amazon": K_AMAZON})
        # ln+fn pair exact via R2; kwd exact via R8 (no relaxation needed).
        assert plan.filter is TRUE

    def test_relaxed_conjunct_stays(self):
        q = parse_query('[ln = "Clancy"] and [ti contains java (near) jdk]')
        plan = build_filter(q, {"Amazon": K_AMAZON})
        assert to_text(plan.filter) == "[ti contains java (near) jdk]"

    def test_uncovered_conjunct_stays(self):
        q = parse_query('[ln = "Clancy"] and [zz = 1]')
        plan = build_filter(q, {"Amazon": K_AMAZON})
        assert to_text(plan.filter) == "[zz = 1]"

    def test_partial_date_residue(self):
        # pyear alone is exact (R7); pyear+pmonth exact as a pair (R6);
        # pmonth alone is uncovered and must stay when by itself.
        q_pair = parse_query("[pyear = 1997] and [pmonth = 5]")
        assert build_filter(q_pair, {"Amazon": K_AMAZON}).filter is TRUE
        q_month = parse_query('[pmonth = 5] and [ln = "x"]')
        plan = build_filter(q_month, {"Amazon": K_AMAZON})
        assert to_text(plan.filter) == "[pmonth = 5]"


class TestNonConjunctiveTop:
    def test_disjunction_treated_as_one_conjunct(self):
        q = parse_query('[ln = "a"] or [fn = "b"]')  # fn disjunct uncovered
        plan = build_filter(q, {"Amazon": K_AMAZON})
        assert plan.filter == plan.query

    def test_exact_disjunction_dropped(self):
        q = parse_query('[ln = "a"] or [ln = "b"]')
        plan = build_filter(q, {"Amazon": K_AMAZON})
        assert plan.filter is TRUE


class TestTranslateForSources:
    def test_translates_each_source(self):
        out = translate_for_sources(example3_query(), {"T1": K1, "T2": K2})
        assert set(out) == {"T1", "T2"}
        assert to_text(out["T2"]) == "[fac.prof.dept = 230]"
