"""Tests for the negation extension (repro.core.negation).

The paper excludes negation; vocabmap adds it as a sound preprocessing
pass (push-down + complement operators), so these tests also pin down
that the addition never disturbs the paper's algorithms.
"""

import pytest

from repro.core.ast import FALSE, TRUE, C, Not, conj, disj, neg
from repro.core.errors import TranslationError
from repro.core.negation import complement_constraint, has_negation, push_negations
from repro.core.normalize import normalize
from repro.core.operators import Operator, register
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import tdqm
from repro.mediator import bookstore_mediator
from repro.rules import K_AMAZON


class TestNegNode:
    def test_double_negation_folds(self):
        c = C("a", "=", 1)
        assert neg(neg(c)) == c

    def test_constants_fold(self):
        assert neg(TRUE) is FALSE
        assert neg(FALSE) is TRUE

    def test_str(self):
        assert str(neg(C("a", "=", 1))) == "not [a = 1]"
        assert str(neg(conj([C("a", "=", 1), C("b", "=", 2)]))).startswith("not (")

    def test_node_count_depth(self):
        n = neg(conj([C("a", "=", 1), C("b", "=", 2)]))
        assert n.node_count() == 4
        assert n.depth() == 3

    def test_bad_child(self):
        with pytest.raises(TypeError):
            Not("nope")  # type: ignore[arg-type]


class TestComplement:
    @pytest.mark.parametrize(
        "op,comp",
        [("=", "!="), ("!=", "="), ("<", ">="), (">", "<="),
         ("contains", "not-contains"), ("in", "not-in"),
         ("during", "not-during"), ("starts", "not-starts")],
    )
    def test_pairs(self, op, comp):
        c = C("a", op, "x")
        assert complement_constraint(c).op == comp
        # Complementing twice restores the original operator.
        assert complement_constraint(complement_constraint(c)) == c

    def test_missing_complement_raises(self):
        register(Operator("weird", lambda a, b: True))
        with pytest.raises(TranslationError):
            complement_constraint(C("a", "weird", 1))


class TestPushNegations:
    def test_de_morgan_and(self):
        q = neg(conj([C("a", "=", 1), C("b", "=", 2)]))
        pushed = push_negations(q)
        assert to_text(pushed) == "[a != 1] or [b != 2]"

    def test_de_morgan_or(self):
        q = neg(disj([C("a", "=", 1), C("b", "=", 2)]))
        pushed = push_negations(q)
        assert to_text(pushed) == "[a != 1] and [b != 2]"

    def test_nested(self):
        q = neg(conj([C("a", "=", 1), neg(C("b", "=", 2))]))
        assert to_text(push_negations(q)) == "[a != 1] or [b = 2]"

    def test_idempotent_on_positive(self):
        q = parse_query("[a = 1] and ([b = 2] or [c = 3])")
        assert push_negations(q) == q

    def test_has_negation(self):
        assert has_negation(neg(C("a", "=", 1)))
        assert not has_negation(C("a", "=", 1))
        assert has_negation(conj([C("a", "=", 1), neg(C("b", "=", 2))]))

    def test_equivalence_preserved(self):
        # Propositional atoms can't relate [a = 1] and [a != 1]; check the
        # semantic equivalence empirically through the engine instead.
        from repro.core.subsume import empirical_equivalent
        from repro.engine.eval import evaluate_row

        q = neg(conj([C("a", "=", 1), disj([C("b", "=", 2), neg(C("c", "=", 3))])]))
        pushed = push_negations(q)
        assert not has_negation(pushed)
        rows = [
            {"a": a, "b": b, "c": c}
            for a in range(3)
            for b in range(4)
            for c in range(5)
        ]
        assert empirical_equivalent(q, pushed, rows, evaluate_row)


class TestParserPrinter:
    def test_parse_not_constraint(self):
        q = parse_query("not [a = 1]")
        assert isinstance(q, Not)

    def test_parse_not_group(self):
        q = parse_query("not ([a = 1] or [b = 2]) and [c = 3]")
        assert to_text(q) == "not ([a = 1] or [b = 2]) and [c = 3]"

    def test_double_not_folds_at_parse(self):
        assert parse_query("not not [a = 1]") == C("a", "=", 1)

    def test_round_trip(self):
        for text in ("not [a = 1]", "not ([a = 1] and [b = 2]) or [c = 3]"):
            q = parse_query(text)
            assert parse_query(to_text(q)) == q


class TestTranslation:
    def test_normalize_eliminates_not(self):
        q = parse_query('not ([ln = "Clancy"] and [pyear = 1997])')
        n = normalize(q)
        assert not has_negation(n)
        assert to_text(n) == '[ln != "Clancy"] or [pyear != 1997]'

    def test_negated_vocabulary_maps_to_true(self):
        # Amazon has no rule for != on ln: sound fallback to True.
        q = parse_query('not [ln = "Clancy"]')
        assert tdqm(q, K_AMAZON) is TRUE

    def test_mediated_negation_end_to_end(self):
        med = bookstore_mediator("amazon")
        for text in (
            'not [ln = "Clancy"]',
            'not ([ln = "Clancy"] and [fn = "Tom"]) and [pyear = 1997]',
            "not [ti contains java (and) jdk]",
            "not [pyear = 1997] and [pmonth = 5]",
        ):
            q = parse_query(text)
            assert med.check_equivalence(q), text

    def test_filter_keeps_negated_residue(self):
        from repro.core.filters import build_filter

        q = parse_query('not [ln = "Clancy"] and [publisher = "oreilly"]')
        plan = build_filter(q, {"Amazon": K_AMAZON})
        assert to_text(plan.filter) == '[ln != "Clancy"]'
