"""Tests for mechanical spec validation (repro.rules.vocabulary)."""

import pytest

from repro.core.ast import C, Constraint, attr
from repro.engine.capabilities import Capability
from repro.engine.sources_builtin import make_amazon
from repro.rules import K_AMAZON, MappingSpecification
from repro.rules.dsl import V, ap, cpat, rule, value_is
from repro.rules.spec import audit_vocabulary
from repro.rules.vocabulary import (
    AttributeSpec,
    ContextVocabulary,
    ValidationReport,
    validate_spec,
)
from repro.text.patterns import NearPat, Word

#: The book view's declared vocabulary, matching Figure 2's constraints.
BOOK_VOCABULARY = ContextVocabulary(
    attributes=(
        AttributeSpec("ln", ("=",), {"=": "Smith"}),
        AttributeSpec("fn", ("=",), {"=": "John"}),
        AttributeSpec("ti", ("=", "contains"),
                      {"=": "jdk for java",
                       "contains": NearPat((Word("java"), Word("jdk")))}),
        AttributeSpec("pyear", ("=",), {"=": 1997}),
        AttributeSpec("pmonth", ("=",), {"=": 5}),
        AttributeSpec("kwd", ("contains",), {"contains": Word("www")}),
        AttributeSpec("publisher", ("=",), {"=": "oreilly"}),
        AttributeSpec("id-no", ("=",), {"=": "081815181Y"}),
        AttributeSpec("category", ("=",), {"=": "D.3"}),
    ),
    groups=(("ln", "fn"), ("pyear", "pmonth")),
)


class TestAttributeSpec:
    def test_constraints_use_samples(self):
        spec = AttributeSpec("pyear", ("=", ">"), {"=": 1997})
        cs = spec.constraints()
        assert cs[0] == C("pyear", "=", 1997)
        assert cs[1].op == ">"

    def test_default_samples_per_operator(self):
        spec = AttributeSpec("x", ("contains", "in", "during", "<"))
        ops = {c.op: c.rhs for c in spec.constraints()}
        assert isinstance(ops["contains"], Word)
        assert isinstance(ops["in"], tuple)


class TestValidateAmazon:
    def test_clean_validation(self):
        report = validate_spec(
            K_AMAZON, BOOK_VOCABULARY, make_amazon().capability
        )
        assert report.ok, str(report)

    def test_fn_alone_is_expected_gap(self):
        # fn participates only via the group rule — it is "covered" because
        # R2 can touch it; a vocabulary WITHOUT ln would flag it.
        lonely = ContextVocabulary(
            attributes=(AttributeSpec("fn", ("=",), {"=": "Tom"}),)
        )
        report = validate_spec(K_AMAZON, lonely)
        assert len(report.uncovered) == 1
        assert not report.ok

    def test_missing_group_rule_detected(self):
        vocabulary = ContextVocabulary(
            attributes=(
                AttributeSpec("ln", ("=",), {"=": "Smith"}),
                AttributeSpec("pyear", ("=",), {"=": 1997}),
            ),
            groups=(("ln", "pyear"),),  # nobody maps this pair jointly
        )
        report = validate_spec(K_AMAZON, vocabulary)
        assert ("ln", "pyear") in report.unmatched_groups

    def test_inexpressible_emission_detected(self):
        # A broken rule emitting vocabulary Amazon does not support.
        bad = rule(
            "R_bad",
            patterns=[cpat("ln", "=", V("L"))],
            where=[value_is("L")],
            emit=lambda b: C("shoe-size", "=", b["L"]),
        )
        spec = MappingSpecification("K_bad", "Amazon", rules=(bad,))
        vocabulary = ContextVocabulary(
            attributes=(AttributeSpec("ln", ("=",), {"=": "Smith"}),)
        )
        report = validate_spec(spec, vocabulary, make_amazon().capability)
        assert report.inexpressible
        assert report.inexpressible[0][0] == "R_bad"

    def test_no_capability_skips_expressibility(self):
        report = validate_spec(K_AMAZON, BOOK_VOCABULARY, capability=None)
        assert report.inexpressible == ()

    def test_report_str_lists_problems(self):
        vocabulary = ContextVocabulary(
            attributes=(AttributeSpec("zzz", ("=",)),),
            groups=(("zzz",),),
        )
        report = validate_spec(K_AMAZON, vocabulary)
        text = str(report)
        assert "UNCOVERED" in text and "MISSING RULE" in text

    def test_unknown_attribute_in_group(self):
        vocabulary = ContextVocabulary(
            attributes=(AttributeSpec("ln", ("=",)),),
            groups=(("ln", "ghost"),),
        )
        with pytest.raises(KeyError):
            validate_spec(K_AMAZON, vocabulary)


class TestAuditVocabularyEdgeCases:
    def test_empty_rule_set_covers_nothing(self):
        spec = MappingSpecification("K_empty", "T", rules=())
        report = audit_vocabulary(spec, [C("x", "=", 1), C("y", "=", 2)])
        assert report.covered == ()
        assert len(report.uncovered) == 2
        assert report.coverage == 0.0

    def test_empty_rule_set_empty_vocabulary(self):
        spec = MappingSpecification("K_empty", "T", rules=())
        report = audit_vocabulary(spec, [])
        assert report.coverage == 1.0

    def test_constraint_covered_only_via_joint_matching(self):
        # [fn = "Tom"] participates in no single-constraint matching of
        # K_Amazon; only R2's joint {ln, fn} group touches it.  The audit
        # must still count it as covered (it is matchable, Definition 2).
        ln, fn = C("ln", "=", "Clancy"), C("fn", "=", "Tom")
        report = audit_vocabulary(K_AMAZON, [ln, fn])
        assert report.uncovered == ()
        assert set(report.covered) == {ln, fn}

    def test_attribute_to_attribute_constraints(self):
        join_rule = rule(
            "Rjoin",
            patterns=[
                cpat(
                    ap("id", view=V("V1")),
                    "=",
                    ap("id", view=V("V2")),
                )
            ],
            emit=lambda b: Constraint(attr("a.key"), "=", attr("b.key")),
        )
        spec = MappingSpecification("K_join", "T", rules=(join_rule,))
        join = Constraint(attr("orders.id"), "=", attr("users.id"))
        other = Constraint(attr("orders.ref"), "=", attr("users.ref"))
        report = audit_vocabulary(spec, [join, other])
        assert join in report.covered
        assert other in report.uncovered
        assert 0.0 < report.coverage < 1.0
