"""Unit tests for the rule matching engine (repro.core.matching)."""

import pytest

from repro.core.ast import C, Constraint, Query, attr
from repro.core.errors import RuleError
from repro.core.matching import (
    AttrPattern,
    ConstraintPattern,
    Matcher,
    RejectMatch,
    Rule,
    Var,
    ViewInstance,
    match_rule,
)
from repro.rules.dsl import V, ap, cpat, rule, value_is


def simple_rule(name="R", exact=False):
    return rule(
        name,
        patterns=[cpat("ln", "=", V("L"))],
        emit=lambda b: C("author", "=", b["L"]),
        exact=exact,
    )


class TestUnification:
    def test_literal_attribute(self):
        r = simple_rule()
        found = match_rule(r, [C("ln", "=", "Clancy")])
        assert len(found) == 1
        assert found[0].emission == C("author", "=", "Clancy")

    def test_attribute_mismatch(self):
        assert match_rule(simple_rule(), [C("fn", "=", "Tom")]) == []

    def test_operator_mismatch(self):
        assert match_rule(simple_rule(), [C("ln", "contains", "Clancy")]) == []

    def test_view_dont_care_matches_qualified(self):
        found = match_rule(simple_rule(), [C("book.ln", "=", "Clancy")])
        assert len(found) == 1

    def test_literal_view_requires_match(self):
        r = rule(
            "Rv",
            patterns=[cpat("fac.dept", "=", V("D"))],
            emit=lambda b: C("dept", "=", b["D"]),
        )
        assert len(match_rule(r, [C("fac.dept", "=", "cs")])) == 1
        assert match_rule(r, [C("pub.dept", "=", "cs")]) == []
        assert match_rule(r, [C("dept", "=", "cs")]) == []

    def test_whole_ref_variable(self):
        r = rule(
            "Rw",
            patterns=[cpat(V("A"), "=", V("N"))],
            emit=lambda b: C(b["A"].attr + "_t", "=", b["N"]),
        )
        found = match_rule(r, [C("fac.ln", "=", "x")])
        assert found[0].emission == C("ln_t", "=", "x")

    def test_var_consistency_across_patterns(self):
        r = rule(
            "Rp",
            patterns=[
                cpat(ap(V("A"), view="fac", index=V("i")), "=", V("N1")),
                cpat(ap(V("A"), view="fac", index=V("j")), "=", V("N2")),
            ],
            emit=lambda b: C("t", "=", b["A"]),
        )
        # Same attribute in two instances: matches.
        found = match_rule(
            r, [C("fac[1].ln", "=", "a"), C("fac[2].ln", "=", "b")]
        )
        assert found
        # Different attributes: the shared Var A blocks the match.
        found = match_rule(
            r, [C("fac[1].ln", "=", "a"), C("fac[2].fn", "=", "b")]
        )
        assert found == []

    def test_view_variable_binds_instance(self):
        r = rule(
            "Rj",
            patterns=[cpat(ap("ln", view=V("V1")), "=", ap("ln", view=V("V2")))],
            emit=lambda b: C(b["V1"].ref("x", "ln"), "=", b["V2"].ref("y", "ln")),
        )
        constraint = Constraint(attr("fac.ln"), "=", attr("pub.ln"))
        found = match_rule(r, [constraint])
        assert found[0].emission == Constraint(
            attr("fac.x.ln"), "=", attr("pub.y.ln")
        )

    def test_view_variable_rejects_unqualified(self):
        r = rule(
            "Rj2",
            patterns=[cpat(ap("ln", view=V("V1")), "=", V("N"))],
            emit=lambda b: C("t", "=", b["N"]),
        )
        assert match_rule(r, [C("ln", "=", "x")]) == []

    def test_index_variable_binds_none_for_abbreviation(self):
        r = rule(
            "Ri",
            patterns=[cpat(ap("bib", view="fac", index=V("i")), "contains", V("P"))],
            emit=lambda b: C(attr("out").with_index(b["i"]), "contains", b["P"]),
        )
        found = match_rule(r, [C("fac.bib", "contains", "mining")])
        assert found[0].emission.lhs.index is None
        found = match_rule(r, [C("fac[3].bib", "contains", "mining")])
        assert found[0].emission.lhs.index == 3

    def test_literal_rhs(self):
        r = rule(
            "Rl",
            patterns=[cpat("flag", "=", 1)],
            emit=lambda b: C("t", "=", 1),
        )
        assert len(match_rule(r, [C("flag", "=", 1)])) == 1
        assert match_rule(r, [C("flag", "=", 2)]) == []

    def test_patterns_use_distinct_constraints(self):
        r = rule(
            "Rd",
            patterns=[cpat("a", "=", V("X")), cpat("a", "=", V("Y"))],
            emit=lambda b: C("t", "=", f"{b['X']}{b['Y']}"),
        )
        # Only one [a = ...] constraint: the two patterns cannot share it.
        assert match_rule(r, [C("a", "=", 1)]) == []
        # Two distinct constraints: both orderings collapse to... two
        # matchings with different emissions (12 and 21), same set.
        found = match_rule(r, [C("a", "=", 1), C("a", "=", 2)])
        assert {m.emission.rhs for m in found} == {"12", "21"}


class TestRuleEvaluation:
    def test_conditions_filter(self):
        r = rule(
            "Rc",
            patterns=[cpat(V("A"), "=", V("N"))],
            where=[value_is("N")],
            emit=lambda b: C("t", "=", b["N"]),
        )
        join = Constraint(attr("fac.ln"), "=", attr("pub.ln"))
        assert match_rule(r, [join]) == []
        assert len(match_rule(r, [C("fac.ln", "=", "x")])) == 1

    def test_let_runs_in_order(self):
        r = rule(
            "Rlet",
            patterns=[cpat("a", "=", V("X"))],
            let={"Y": lambda b: b["X"] + 1, "Z": lambda b: b["Y"] * 10},
            emit=lambda b: C("t", "=", b["Z"]),
        )
        found = match_rule(r, [C("a", "=", 4)])
        assert found[0].emission.rhs == 50

    def test_reject_match_vetoes(self):
        def veto(bindings):
            raise RejectMatch("nope")

        r = rule(
            "Rr",
            patterns=[cpat("a", "=", V("X"))],
            let={"Y": veto},
            emit=lambda b: C("t", "=", b["Y"]),
        )
        assert match_rule(r, [C("a", "=", 1)]) == []

    def test_exact_flag_static(self):
        found = match_rule(simple_rule(exact=True), [C("ln", "=", "x")])
        assert found[0].exact

    def test_exact_flag_dynamic(self):
        r = rule(
            "Rdyn",
            patterns=[cpat("a", "=", V("X"))],
            emit=lambda b: C("t", "=", b["X"]),
            exact=lambda b: b["X"] > 5,
        )
        assert match_rule(r, [C("a", "=", 9)])[0].exact
        assert not match_rule(r, [C("a", "=", 1)])[0].exact

    def test_non_query_emission_rejected(self):
        r = rule(
            "Rbad",
            patterns=[cpat("a", "=", V("X"))],
            emit=lambda b: "not a query",  # type: ignore[return-value]
        )
        with pytest.raises(RuleError):
            match_rule(r, [C("a", "=", 1)])

    def test_unbound_variable_in_emit(self):
        r = rule(
            "Runbound",
            patterns=[cpat("a", "=", V("X"))],
            emit=lambda b: C("t", "=", b["MISSING"]),
        )
        with pytest.raises(RuleError):
            match_rule(r, [C("a", "=", 1)])

    def test_rule_needs_patterns(self):
        with pytest.raises(RuleError):
            Rule(name="Rempty", patterns=(), emit=lambda b: C("t", "=", 1))


class TestMatcher:
    def test_subset_query_filters_potential(self):
        r1 = simple_rule("R1")
        r2 = rule(
            "R2",
            patterns=[cpat("ln", "=", V("L")), cpat("fn", "=", V("F"))],
            emit=lambda b: C("author", "=", f"{b['L']}, {b['F']}"),
        )
        matcher = Matcher([r1, r2])
        ln = C("ln", "=", "Clancy")
        fn = C("fn", "=", "Tom")
        matcher.potential([ln, fn])
        only_ln = matcher.matchings([ln])
        assert {m.rule_name for m in only_ln} == {"R1"}
        both = matcher.matchings([ln, fn])
        assert {m.rule_name for m in both} == {"R1", "R2"}

    def test_universe_grows_not_resets(self):
        matcher = Matcher([simple_rule("R1")])
        a = C("ln", "=", "A")
        b = C("ln", "=", "B")
        matcher.potential([a])
        matcher.potential([b])
        # Both constraints' matchings remain visible.
        assert len(matcher.matchings([a, b])) == 2

    def test_view_instance_helper(self):
        vi = ViewInstance("fac", 2)
        assert vi.ref("prof", "ln") == attr("fac[2].prof.ln")
        assert str(vi) == "fac[2]"
        with pytest.raises(ValueError):
            vi.ref()
