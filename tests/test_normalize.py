"""Unit tests for normalization (repro.core.normalize)."""

from repro.core.ast import And, C, Constraint, Or, attr, conj, disj
from repro.core.normalize import normalize, normalize_constraint
from repro.core.parser import parse_query


class TestJoinOrientation:
    def test_flip_less_than(self):
        c = Constraint(attr("pub.year"), "<", attr("fac.year"))
        n = normalize_constraint(c)
        assert n.op == ">"
        assert n.lhs == attr("fac.year")
        assert n.rhs == attr("pub.year")

    def test_flip_leq(self):
        c = Constraint(attr("a.x"), "<=", attr("b.y"))
        n = normalize_constraint(c)
        assert n.op == ">=" and n.lhs == attr("b.y")

    def test_symmetric_ordering(self):
        c = Constraint(attr("pub.ln"), "=", attr("fac.ln"))
        n = normalize_constraint(c)
        assert n.lhs == attr("fac.ln") and n.rhs == attr("pub.ln")

    def test_already_normalized_untouched(self):
        c = Constraint(attr("fac.ln"), "=", attr("pub.ln"))
        assert normalize_constraint(c) == c

    def test_index_breaks_ties(self):
        c = Constraint(attr("fac[2].ln"), "=", attr("fac[1].ln"))
        n = normalize_constraint(c)
        assert n.lhs == attr("fac[1].ln")

    def test_selections_untouched(self):
        c = C("ln", "=", "Clancy")
        assert normalize_constraint(c) is c

    def test_greater_than_join_untouched(self):
        c = Constraint(attr("a.income"), ">", attr("b.expense"))
        assert normalize_constraint(c) == c


class TestTreeNormalization:
    def test_idempotent(self):
        q = parse_query('([a = 1] or [b = 2]) and [c = 3] and ([d = 4] or true)')
        assert normalize(normalize(q)) == normalize(q)

    def test_constant_folding(self):
        q = conj([C("a", "=", 1), parse_query("true")])
        assert normalize(q) == C("a", "=", 1)

    def test_join_inside_tree(self):
        q = parse_query("[pub.ln = fac.ln] and [a = 1]")
        n = normalize(q)
        join = [c for c in n.constraints() if c.is_join][0]
        assert join.lhs == attr("fac.ln")

    def test_preserves_alternation(self):
        q = parse_query("([a = 1] or [b = 2]) and ([c = 3] or [d = 4])")
        n = normalize(q)
        assert isinstance(n, And)
        assert all(isinstance(child, Or) for child in n.children)
