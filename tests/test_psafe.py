"""Tests for Algorithm PSafe (repro.core.psafe) — Figure 11, Examples 12-14."""

from repro.core.ast import C, Or, conj, disj
from repro.core.psafe import psafe, psafe_partition
from repro.rules import K_AMAZON, K_MAP
from repro.workloads.generator import synthetic_spec
from repro.workloads.paper_queries import (
    example13_qa,
    example13_qb,
    example13_spec,
    qbook,
)


class TestExample12:
    """Partitioning Q̂_book: {{Č1}, {Č2, Č3}}."""

    def test_partition(self):
        q = qbook()
        blocks = psafe_partition(list(q.children), K_AMAZON.matcher())
        assert blocks == [[0], [1, 2]]

    def test_cross_matchings_found(self):
        q = qbook()
        result = psafe(list(q.children), K_AMAZON.matcher())
        sets = {m.constraints for m in result.cross_matchings}
        assert sets == {
            frozenset({C("pyear", "=", 1997), C("pmonth", "=", 5)}),
            frozenset({C("pyear", "=", 1997), C("pmonth", "=", 6)}),
        }

    def test_not_fully_separable(self):
        q = qbook()
        assert not psafe(list(q.children), K_AMAZON.matcher()).is_fully_separable


class TestExample13And14:
    """Q̂a = (x)(y)(yu ∨ v) vs Q̂b = (x)(y ∨ u)(y ∨ v)."""

    def test_qa_partition(self):
        spec = example13_spec()
        qa = example13_qa()
        blocks = psafe_partition(list(qa.children), spec.matcher())
        # Only {Č1, Č2} is needed; Č3 separates (Example 13).
        assert blocks == [[0, 1], [2]]

    def test_qb_partition_merges_everything(self):
        spec = example13_spec()
        qb = example13_qb()
        blocks = psafe_partition(list(qb.children), spec.matcher())
        assert blocks == [[0, 1, 2]]

    def test_qb_needs_both_candidate_blocks(self):
        spec = example13_spec()
        qb = example13_qb()
        result = psafe(list(qb.children), spec.matcher())
        chosen = {tuple(sorted(block)) for block in result.chosen_blocks}
        assert chosen == {(0, 1), (0, 2)}


class TestSeparableCases:
    def test_independent_conjuncts_all_singletons(self):
        spec = synthetic_spec([], singletons=["a", "b", "c"])
        conjuncts = [
            disj([C("a", "=", 1), C("b", "=", 1)]),
            C("c", "=", 1),
        ]
        result = psafe(conjuncts, spec.matcher())
        assert result.is_fully_separable
        assert result.blocks == ((0,), (1,))

    def test_single_conjunct(self):
        spec = synthetic_spec([], singletons=["a"])
        result = psafe([C("a", "=", 1)], spec.matcher())
        assert result.blocks == ((0,),)

    def test_pair_rule_within_one_conjunct_is_fine(self):
        # The dependent pair lives inside Č1, so no cross-matching exists.
        spec = synthetic_spec([("a", "b")], singletons=["a", "b", "c"])
        conjuncts = [
            conj([C("a", "=", 1), C("b", "=", 1)]),
            C("c", "=", 1),
        ]
        # conj() of two leaves is a simple conjunction — wrap in a
        # disjunction to make it a realistic non-leaf conjunct.
        conjuncts[0] = disj([conjuncts[0], C("c", "=", 2)])
        result = psafe(conjuncts, spec.matcher())
        assert result.is_fully_separable


class TestMapSourceConjunction:
    """Example 8 under the *safety* (not precise) test: the redundant
    cross-matchings force a merge — the paper's acknowledged extra cost."""

    def test_ranges_conjunction_merges(self):
        conjuncts = [
            disj([conj([C("x_min", "=", 10), C("x_max", "=", 30)]), C("zz", "=", 1)]),
            disj([conj([C("y_min", "=", 20), C("y_max", "=", 40)]), C("ww", "=", 1)]),
        ]
        result = psafe(conjuncts, K_MAP.matcher())
        assert result.blocks == ((0, 1),)
        assert not result.is_fully_separable


class TestDeterminism:
    def test_same_input_same_partition(self):
        q = qbook()
        a = psafe_partition(list(q.children), K_AMAZON.matcher())
        b = psafe_partition(list(q.children), K_AMAZON.matcher())
        assert a == b
