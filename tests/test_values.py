"""Unit tests for structured values (repro.core.values)."""

import pytest

from repro.core.values import Date, Month, Point, Range, Year, month_name


class TestMonthName:
    def test_known_months(self):
        assert month_name(1) == "Jan"
        assert month_name(5) == "May"
        assert month_name(12) == "Dec"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            month_name(0)
        with pytest.raises(ValueError):
            month_name(13)


class TestDate:
    def test_ordering(self):
        assert Date(1997, 5, 1) < Date(1997, 6, 1) < Date(1998, 1, 1)

    def test_str(self):
        assert str(Date(1997, 5, 3)) == "1997-05-03"


class TestYearPeriod:
    def test_covers_date(self):
        assert Year(1997).covers(Date(1997, 5))
        assert not Year(1997).covers(Date(1996, 12))

    def test_covers_bare_year(self):
        assert Year(1997).covers(1997)
        assert not Year(1997).covers(1998)

    def test_paper_rendering(self):
        assert str(Year(1997)) == "97"


class TestMonthPeriod:
    def test_covers(self):
        period = Month(1997, 5)
        assert period.covers(Date(1997, 5, 20))
        assert not period.covers(Date(1997, 6, 1))
        assert not period.covers(Date(1996, 5, 1))

    def test_paper_rendering(self):
        assert str(Month(1997, 5)) == "May/97"


class TestRange:
    def test_contains_boundaries(self):
        r = Range(10, 30)
        assert r.contains(10) and r.contains(30) and r.contains(20)
        assert not r.contains(9.99) and not r.contains(31)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Range(5, 1)

    def test_paper_rendering(self):
        assert str(Range(10, 30)) == "(10:30)"
        assert str(Range(1.5, 2.25)) == "(1.5:2.25)"


class TestPoint:
    def test_rendering(self):
        assert str(Point(10, 20)) == "(10, 20)"

    def test_hashable(self):
        assert Point(1, 2) in {Point(1, 2)}
