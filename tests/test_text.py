"""Unit tests for the text-pattern substrate (repro.text)."""

import pytest

from repro.core.errors import ParseError
from repro.text import (
    AndPat,
    NearPat,
    OrPat,
    PhrasePat,
    TextCapability,
    Word,
    matches,
    parse_pattern,
    pattern_operators,
    rewrite_text_pattern,
    tokenize,
)
from repro.text.match import match_positions


class TestParsePattern:
    def test_single_word(self):
        assert parse_pattern("java") == Word("java")

    def test_near(self):
        p = parse_pattern("java (near) jdk")
        assert isinstance(p, NearPat)
        assert p.parts == (Word("java"), Word("jdk"))

    def test_near_with_window(self):
        p = parse_pattern("java (near/3) jdk")
        assert p.window == 3

    def test_and_or_symbols(self):
        assert isinstance(parse_pattern("a (∧) b"), AndPat)
        assert isinstance(parse_pattern("a (∨) b"), OrPat)

    def test_precedence_and_tighter_than_near(self):
        p = parse_pattern("a (and) b (near) c")
        assert isinstance(p, NearPat)
        assert isinstance(p.parts[0], AndPat)

    def test_or_loosest(self):
        p = parse_pattern("a (near) b (or) c")
        assert isinstance(p, OrPat)

    def test_grouping(self):
        p = parse_pattern("(a (or) b) (and) c")
        assert isinstance(p, AndPat)
        assert isinstance(p.parts[0], OrPat)

    def test_phrase(self):
        p = parse_pattern('"data mining"')
        assert p == PhrasePat(("data", "mining"))

    def test_quoted_single_word_is_word(self):
        assert parse_pattern('"java"') == Word("java")

    @pytest.mark.parametrize("bad", ["", "(near)", "a (near)", "((a)", "a ) b"])
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_pattern(bad)

    def test_case_folding(self):
        assert parse_pattern("JAVA") == Word("java")


class TestMatching:
    def test_tokenize(self):
        assert tokenize("The JDK, for Java!") == ["the", "jdk", "for", "java"]

    def test_word(self):
        assert matches(Word("java"), "Java programming")
        assert not matches(Word("java"), "javascript programming")

    def test_phrase(self):
        p = PhrasePat(("data", "mining"))
        assert matches(p, "a data mining guide")
        assert not matches(p, "mining of data")

    def test_and(self):
        p = parse_pattern("data (and) mining")
        assert matches(p, "mining comes before data here")
        assert not matches(p, "just mining")

    def test_or(self):
        p = parse_pattern("www (or) web")
        assert matches(p, "the web era")
        assert not matches(p, "the internet era")

    def test_near_window(self):
        p = parse_pattern("java (near) jdk")  # default window 5
        assert matches(p, "java a b c d jdk")
        assert not matches(p, "java a b c d e f jdk")

    def test_near_is_narrower_than_and(self):
        near = parse_pattern("java (near) jdk")
        conj = parse_pattern("java (and) jdk")
        text = "java " + "filler " * 10 + "jdk"
        assert matches(conj, text) and not matches(near, text)

    def test_match_positions(self):
        tokens = tokenize("java jdk java")
        assert match_positions(Word("java"), tokens) == [0, 2]


class TestRewrite:
    def test_near_relaxes_to_and(self):
        result = rewrite_text_pattern(
            parse_pattern("java (near) jdk"),
            TextCapability(supports_near=False),
        )
        assert isinstance(result.pattern, AndPat)
        assert not result.exact

    def test_and_relaxes_to_or(self):
        result = rewrite_text_pattern(
            parse_pattern("a (and) b"),
            TextCapability(supports_and=False),
        )
        assert isinstance(result.pattern, OrPat)
        assert not result.exact

    def test_supported_pattern_is_exact(self):
        pattern = parse_pattern("java (and) jdk")
        result = rewrite_text_pattern(pattern, TextCapability())
        assert result.pattern == pattern
        assert result.exact

    def test_phrase_relaxes_to_near(self):
        result = rewrite_text_pattern(
            parse_pattern('"data mining"'),
            TextCapability(supports_phrase=False),
        )
        assert isinstance(result.pattern, NearPat)
        assert not result.exact

    def test_nested_relaxation(self):
        pattern = parse_pattern("(a (near) b) (or) c")
        result = rewrite_text_pattern(pattern, TextCapability(supports_near=False))
        assert isinstance(result.pattern, OrPat)
        assert isinstance(result.pattern.parts[0], AndPat)
        assert not result.exact

    def test_no_rewrite_possible(self):
        with pytest.raises(ValueError):
            rewrite_text_pattern(
                parse_pattern("a (and) b"),
                TextCapability(supports_and=False, supports_or=False),
            )

    def test_rewrite_subsumes_original(self):
        # Every text matching the original must match the relaxation.
        texts = [
            "java jdk",
            "java x x x x x x x jdk",
            "jdk before java",
            "only java",
            "neither",
        ]
        original = parse_pattern("java (near) jdk")
        relaxed = rewrite_text_pattern(
            original, TextCapability(supports_near=False)
        ).pattern
        for text in texts:
            if matches(original, text):
                assert matches(relaxed, text)


class TestPatternOperators:
    def test_collects_kinds(self):
        pattern = parse_pattern('("a b" (near) c) (or) d')
        kinds = pattern_operators(pattern)
        assert kinds == {"phrase", "near", "or", "word"}
