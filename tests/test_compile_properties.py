"""Property-based tests: compiled dispatch == the interpreted oracle.

The contract of :mod:`repro.perf.compile` is **bit-identity**: for any
specification and any query, translating through the compiled rule
closures returns exactly what the interpreted ``match_rule`` walk
returns — same mapping, same exactness, same matchings, in the same
order.  ``Matcher(..., interpret=True)`` keeps the interpreted walk
reachable on the identical candidate pools, so the property can be
stated directly:

* random ∧/∨ queries against random specs (single- and multi-pattern
  rules) translate identically on both paths;
* rules that emit negations (``Not`` nodes) and rules vetoing emissions
  a target :class:`~repro.engine.capabilities.Capability` cannot express
  (the ``RejectMatch`` path) behave identically on both paths;
* the equality holds at scale: generated specifications with 1k and 10k
  rules (the serve-fleet regime the prematch memo is sized for).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast import C, conj, disj, neg
from repro.core.matching import Matcher
from repro.core.tdqm import tdqm_translate
from repro.engine.capabilities import Capability
from repro.rules.dsl import V, cpat, rule, value_is
from repro.rules.spec import MappingSpecification
from repro.workloads.generator import (
    random_query,
    random_spec,
    simple_conjunction,
    synthetic_spec,
    vocabulary,
)

ATTRS = vocabulary(8)

query_seeds = st.integers(min_value=0, max_value=10_000)
spec_seeds = st.integers(min_value=0, max_value=200)


def _assert_bit_identical(query, spec: MappingSpecification) -> None:
    compiled = tdqm_translate(query, spec.matcher())
    oracle = tdqm_translate(query, spec.matcher(interpret=True))
    assert compiled == oracle, f"{spec.name}: {query}"


@given(query_seeds, spec_seeds)
@settings(max_examples=60, deadline=None)
def test_compiled_translation_equals_interpreted(qseed, sseed):
    spec = random_spec(ATTRS, pair_count=3, seed=sseed)
    query = random_query(ATTRS, seed=qseed, n_constraints=8, max_depth=4)
    _assert_bit_identical(query, spec)


@given(query_seeds, spec_seeds)
@settings(max_examples=60, deadline=None)
def test_compiled_matchings_equal_interpreted(qseed, sseed):
    # Below the translation: the raw prematch — same matchings, same
    # discovery order, same exactness, matching by matching.
    spec = random_spec(ATTRS, pair_count=3, seed=sseed)
    query = random_query(ATTRS, seed=qseed, n_constraints=8, max_depth=4)
    universe = frozenset(query.constraints())
    index = spec.compiled_index()

    compiled = Matcher(spec.rules, index=index, interpret=False).potential(universe)
    oracle = Matcher(spec.rules, index=index, interpret=True).potential(universe)

    assert [
        (m.rule_name, m.constraints, str(m.emission), m.exact) for m in compiled
    ] == [(m.rule_name, m.constraints, str(m.emission), m.exact) for m in oracle]


# ---------------------------------------------------------------------------
# Negation emissions and capability-filtered rules
# ---------------------------------------------------------------------------

#: The target can evaluate t_cap but not t_blocked: the capability rule
#: below vetoes (RejectMatch) every odd-valued match, exercising the
#: no-match memo entries on the compiled path.
_TARGET_CAP = Capability.of(selections=[("t_cap", "=")])


def _special_spec() -> MappingSpecification:
    def emit_not(bindings):
        return neg(C("t_not", "=", str(bindings["X"])))

    def emit_capability_checked(bindings):
        from repro.core.matching import RejectMatch

        attr = "t_cap" if int(bindings["X"]) % 2 == 0 else "t_blocked"
        emitted = C(attr, "=", str(bindings["X"]))
        if not _TARGET_CAP.supports(emitted):
            raise RejectMatch(f"target cannot evaluate {emitted}")
        return emitted

    extra = (
        rule(
            "R_not_emit",
            patterns=[cpat("a6", "=", V("X"))],
            where=[value_is("X")],
            emit=emit_not,
            exact=True,
        ),
        rule(
            "R_cap_filtered",
            patterns=[cpat("a7", "=", V("X"))],
            where=[value_is("X")],
            emit=emit_capability_checked,
            exact=True,
        ),
    )
    base = synthetic_spec(
        groups=[("a0", "a1")], singletons=ATTRS[:6], name="K_special"
    )
    return MappingSpecification(
        name="K_special", target="synthetic", rules=base.rules + extra
    )


@given(query_seeds)
@settings(max_examples=60, deadline=None)
def test_not_emit_and_capability_rules_bit_identical(qseed):
    spec = _special_spec()
    # Queries range over a6 (negated emission) and a7 (capability veto on
    # odd values) plus negated source leaves.
    query = random_query(ATTRS, seed=qseed, n_constraints=8, max_depth=4)
    if qseed % 2:
        query = conj([query, neg(C("a6", "=", qseed % 10))])
    _assert_bit_identical(query, spec)


def test_capability_veto_actually_fires_on_both_paths():
    spec = _special_spec()
    allowed = conj([C("a7", "=", 2)])
    vetoed = conj([C("a7", "=", 3)])
    assert "t_cap" in str(tdqm_translate(allowed, spec.matcher()).mapping)
    for interpret in (False, True):
        result = tdqm_translate(vetoed, spec.matcher(interpret=interpret))
        assert "t_blocked" not in str(result.mapping)
    _assert_bit_identical(vetoed, spec)


def test_not_emission_survives_translation():
    spec = _special_spec()
    result = tdqm_translate(conj([C("a6", "=", 5)]), spec.matcher())
    assert "not" in str(result.mapping)
    _assert_bit_identical(conj([C("a6", "=", 5)]), spec)


# ---------------------------------------------------------------------------
# Scale: 1k- and 10k-rule workloads
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=[1_000, 10_000], ids=["1k", "10k"])
def big_spec(request):
    n = request.param
    attrs = vocabulary(n)
    groups = [(attrs[i], attrs[i + 1]) for i in range(0, 40, 2)]
    return synthetic_spec(groups, singletons=attrs, name=f"K_{n}"), attrs


def test_bit_identity_at_scale(big_spec):
    spec, attrs = big_spec
    queries = [
        simple_conjunction(attrs[:8], 0),
        simple_conjunction(attrs[len(attrs) // 2 : len(attrs) // 2 + 6], 1),
        disj([simple_conjunction(attrs[:4], 2), simple_conjunction(attrs[-4:], 3)]),
        conj([simple_conjunction(attrs[:3], 4), neg(C(attrs[5], "=", 9))]),
        random_query(attrs[:64], seed=7, n_constraints=10, max_depth=4),
    ]
    for query in queries:
        _assert_bit_identical(query, spec)


def test_prematch_memo_consistent_at_scale(big_spec):
    # A repeat universe is served from the index's prematch memo; the
    # memoized answer must equal both a fresh compiled dispatch and the
    # interpreted oracle.
    spec, attrs = big_spec
    index = spec.compiled_index()
    universe = frozenset(simple_conjunction(attrs[:8], 5).constraints())

    first = Matcher(spec.rules, index=index).potential(universe)
    memoized = Matcher(spec.rules, index=index).potential(universe)
    oracle = Matcher(spec.rules, index=index, interpret=True).potential(universe)

    def key(matchings):
        return [(m.rule_name, m.constraints, str(m.emission)) for m in matchings]

    assert key(memoized) == key(first) == key(oracle)
