"""Cross-feature integration: the extensions composed together.

Each extension is tested in isolation elsewhere; these tests pin down the
*interactions*: negation through federation, grammar restrictions under a
union view, minimization after translation, JSON transport of translated
mappings, and the whole stack at once.
"""

import pytest

from repro.core.json_io import dumps, loads
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import tdqm
from repro.core.theory import simplify_query
from repro.engine.grammar import QueryGrammar
from repro.mediator import bookstore_federation, bookstore_mediator
from repro.rules import K_AMAZON


class TestNegationAcrossFeatures:
    def test_negation_through_federation(self):
        mediator = bookstore_federation()
        for text in (
            'not [ln = "Clancy"]',
            'not ([ln = "Clancy"] and [fn = "Tom"]) and [pyear = 1997]',
        ):
            assert mediator.check_equivalence(parse_query(text)), text

    def test_negation_through_grammar_wrapper(self):
        grammar = QueryGrammar(allow_disjunction=False, max_constraints=2)
        mediator = bookstore_mediator("amazon", grammar=grammar)
        # Push-down turns the NOT into a disjunction of complements — the
        # wrapper then has to split it for the form.
        q = parse_query('not ([ln = "Clancy"] and [pyear = 1997]) and [pmonth = 5]')
        assert mediator.check_equivalence(q)


class TestGrammarUnderUnion:
    def test_federation_with_one_restricted_store(self):
        mediator = bookstore_federation()
        mediator.sources["Amazon"].grammar = QueryGrammar(
            allow_disjunction=False, max_constraints=3
        )
        for text in (
            '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
            "[kwd contains www]",
        ):
            assert mediator.check_equivalence(parse_query(text)), text


class TestMinimizationAfterTranslation:
    def test_simplify_is_equivalence_preserving_on_mappings(self):
        queries = [
            '([ln = "a"] or [ln = "b"]) and [fn = "c"]',
            "[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])",
            "[kwd contains www] or [kwd contains web]",
        ]
        for text in queries:
            mapping = tdqm(parse_query(text), K_AMAZON)
            assert prop_equivalent(simplify_query(mapping), mapping)

    def test_simplify_collapses_redundant_injected_terms(self):
        from repro.core.ast import conj
        from repro.core.values import Month, Year
        from repro.core.ast import C

        mapping = conj(
            [
                C("pdate", "during", Month(1997, 5)),
                C("pdate", "during", Year(1997)),
                C("author", "=", "Smith"),
            ]
        )
        simplified = simplify_query(mapping)
        assert to_text(simplified) == (
            '[pdate during May/97] and [author = "Smith"]'
        )


class TestJsonTransportOfMappings:
    def test_translated_mapping_survives_the_wire(self):
        # Mediator translates, serializes, the wrapper deserializes and
        # executes — the deployment shape of Section 2.
        q = parse_query('([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]')
        mapping = tdqm(q, K_AMAZON)
        shipped = loads(dumps(mapping))
        assert shipped == mapping
        from repro.engine.sources_builtin import make_amazon

        rows_local = make_amazon().select_rows("catalog", mapping)
        rows_shipped = make_amazon().select_rows("catalog", shipped)
        assert rows_local == rows_shipped


class TestFullStack:
    def test_everything_at_once(self):
        # Union view + one grammar-restricted store + a negated query.
        mediator = bookstore_federation()
        mediator.sources["Clbooks"].grammar = QueryGrammar(max_constraints=2)
        q = parse_query(
            'not [publisher = "putnam"] and '
            '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]'
        )
        assert mediator.check_equivalence(q)
        answer = mediator.answer_mediated(q)
        assert len(answer.plans) == 2
        publishers = {dict(row[0][2])["publisher"] for row in answer.rows}
        assert "putnam" not in publishers
