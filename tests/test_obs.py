"""Tests for the tracing/metrics core (repro.obs).

Covers the Span/Tracer data model, the thread-local installation
semantics, the disabled (no-op) fast path, the exporters — and the
tentpole guarantee that instrumentation never changes behaviour:
translations, filters, and mediated answers are byte-identical with
tracing on and off.
"""

import threading

from repro.core.filters import build_filter
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import tdqm_translate
from repro.mediator import bookstore_mediator, faculty_mediator
from repro.obs import (
    Span,
    count,
    counters_table,
    current_tracer,
    enabled,
    gauge,
    gauge_max,
    render_span,
    report_to_dict,
    span,
    span_to_dict,
    tracing,
)
from repro.obs.trace import _NOOP_SPAN
from repro.rules import K1, K2, K_AMAZON, K_CLBOOKS
from repro.workloads.paper_queries import example2_query, qbook


class TestSpan:
    def test_elapsed_ms(self):
        s = Span("x")
        s.elapsed = 0.25
        assert s.elapsed_ms == 250.0

    def test_total_sums_subtree(self):
        root = Span("root")
        child = Span("child")
        grandchild = Span("grandchild")
        root.children.append(child)
        child.children.append(grandchild)
        root.counters["n"] = 1
        grandchild.counters["n"] = 4
        assert root.total("n") == 5
        assert child.total("n") == 4
        assert root.total("absent") == 0

    def test_find_preorder(self):
        root = Span("root")
        a, b = Span("stage"), Span("stage")
        a.attrs["which"] = "first"
        root.children.extend([a, b])
        assert root.find("stage") is a
        assert root.find("missing") is None


class TestTracer:
    def test_span_nesting(self):
        with tracing("t") as tracer:
            with span("outer"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        outer, sibling = tracer.root.children
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner"]
        assert sibling.name == "sibling"
        assert outer.elapsed >= outer.children[0].elapsed >= 0.0

    def test_count_local_and_global(self):
        with tracing() as tracer:
            count("hits")
            with span("stage"):
                count("hits", 2)
        assert tracer.counters["hits"] == 3
        assert tracer.root.counters["hits"] == 1
        assert tracer.root.children[0].counters["hits"] == 2
        assert tracer.root.total("hits") == 3

    def test_gauge_last_write_wins(self):
        with tracing() as tracer:
            gauge("size", 3)
            gauge("size", 7)
        assert tracer.gauges["size"] == 7

    def test_gauge_max_keeps_high_water_mark(self):
        with tracing() as tracer:
            gauge_max("depth", 5)
            gauge_max("depth", 2)
            gauge_max("depth", 9)
        assert tracer.gauges["depth"] == 9

    def test_root_is_timed(self):
        with tracing("timed") as tracer:
            pass
        assert tracer.root.name == "timed"
        assert tracer.root.elapsed >= 0.0


class TestInstallation:
    def test_no_tracer_outside_block(self):
        assert current_tracer() is None
        assert not enabled()
        with tracing() as tracer:
            assert current_tracer() is tracer
            assert enabled()
        assert current_tracer() is None

    def test_nested_tracing_shadows_and_restores(self):
        with tracing("outer") as outer:
            count("outer.only")
            with tracing("inner") as inner:
                assert current_tracer() is inner
                count("inner.only")
            assert current_tracer() is outer
        assert outer.counters == {"outer.only": 1}
        assert inner.counters == {"inner.only": 1}

    def test_tracer_is_thread_local(self):
        seen = {}

        def worker():
            seen["tracer"] = current_tracer()
            seen["enabled"] = enabled()

        with tracing():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["tracer"] is None
        assert seen["enabled"] is False

    def test_tracer_restored_after_exception(self):
        try:
            with tracing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is None


class TestNoopPath:
    """The disabled branch: every hook must be a cheap, silent no-op."""

    def test_span_returns_shared_noop(self):
        assert current_tracer() is None
        handle = span("anything", attr=1)
        assert handle is _NOOP_SPAN
        with handle:
            pass  # usable as a context manager

    def test_count_gauge_noop_without_tracer(self):
        count("orphan", 5)
        gauge("orphan.gauge", 1)
        gauge_max("orphan.max", 2)
        # Nothing was recorded anywhere — a later tracer starts clean.
        with tracing() as tracer:
            pass
        assert tracer.counters == {}
        assert tracer.gauges == {}


class TestTracingDoesNotChangeResults:
    """Byte-identical outputs with tracing on vs off (tentpole guarantee)."""

    QUERIES = [
        '[ln = "Clancy"] and [fn = "Tom"]',
        '([ln = "Clancy"] or [ln = "Klancy"]) and [pyear = 1997]',
        "[ti contains java (near) jdk] and [pmonth = 5]",
        'not [ln = "Smith"] and [pyear = 1997]',
    ]

    def test_translations_identical(self):
        for spec in (K_AMAZON, K_CLBOOKS):
            for text in self.QUERIES + [to_text(qbook()), to_text(example2_query())]:
                query = parse_query(text)
                off = tdqm_translate(query, spec)
                with tracing():
                    on = tdqm_translate(query, spec)
                assert to_text(on.mapping) == to_text(off.mapping)
                assert on.exact == off.exact

    def test_filter_plans_identical(self):
        specs = {"K1": K1, "K2": K2}
        query = parse_query("[fac.bib contains data (near) mining] and [fac.dept = cs]")
        off = build_filter(query, specs)
        with tracing():
            on = build_filter(query, specs)
        assert to_text(on.filter) == to_text(off.filter)
        assert {n: to_text(m) for n, m in on.mappings.items()} == {
            n: to_text(m) for n, m in off.mappings.items()
        }

    def test_mediated_answers_identical(self):
        for mediator in (bookstore_mediator("amazon"), faculty_mediator()):
            for text in self.QUERIES[:2]:
                query = parse_query(text)
                try:
                    off = mediator.answer_mediated(query)
                except Exception:
                    continue  # query not in this mediator's vocabulary
                with tracing():
                    on = mediator.answer_mediated(query)
                assert on.rows == off.rows


class TestExport:
    def test_span_to_dict_shape(self):
        with tracing("run") as tracer:
            with span("stage", kind="demo"):
                count("n", 3)
                gauge("g", 7)
        data = span_to_dict(tracer.root)
        assert data["name"] == "run"
        assert isinstance(data["elapsed_ms"], float)
        (child,) = data["children"]
        assert child["attrs"] == {"kind": "demo"}
        assert child["counters"] == {"n": 3}
        assert child["gauges"] == {"g": 7}
        assert "children" not in child

    def test_report_to_dict_aggregates(self):
        with tracing() as tracer:
            count("b")
            count("a", 2)
            gauge("z", 1)
        report = report_to_dict(tracer)
        assert list(report["counters"]) == ["a", "b"]  # sorted
        assert report["gauges"] == {"z": 1}
        assert report["span_tree"]["name"] == "trace"

    def test_render_span_lines(self):
        with tracing("run") as tracer:
            with span("stage", source="S"):
                count("n")
        lines = render_span(tracer.root)
        assert lines[0].startswith("run  ")
        assert lines[1].startswith("  stage source=S  ")
        assert lines[1].endswith("[n=1]")

    def test_counters_table_empty(self):
        with tracing() as tracer:
            pass
        assert counters_table(tracer) == ["(no counters recorded)"]

    def test_counters_table_aligned(self):
        with tracing() as tracer:
            count("short")
            count("a.much.longer.counter")
        lines = counters_table(tracer)
        assert lines == ["a.much.longer.counter  1", "short                  1"]
