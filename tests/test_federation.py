"""Tests for union views and the federated bookstore (Section 2).

"A view can be a union of SPJ components ... we can process each
component separately and union the results."
"""

import pytest

from repro.core.errors import SchemaError
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.engine.sources_builtin import DEFAULT_BOOKS, make_amazon
from repro.engine.views import BaseRef, UnionViewDef, ViewDef
from repro.mediator import bookstore_federation
from repro.mediator.builtin import BOOK_ATTRS, CLBOOKS_ONLY_BOOKS, _book_row


class TestUnionViewDef:
    def _component(self, name="c1"):
        return ViewDef(
            name=name,
            attributes=BOOK_ATTRS,
            bases=(BaseRef("Amazon", "catalog"),),
            combine=_book_row,
        )

    def test_attributes_from_components(self):
        union = UnionViewDef("book", (self._component(),))
        assert union.attributes == BOOK_ATTRS

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            UnionViewDef("book", ())

    def test_mismatched_attributes_rejected(self):
        other = ViewDef(
            name="c2",
            attributes=("only", "two"),
            bases=(BaseRef("Amazon", "catalog"),),
            combine=lambda by_alias: {"only": 1, "two": 2},
        )
        with pytest.raises(SchemaError):
            UnionViewDef("book", (self._component(), other))

    def test_materialize_is_bag_union(self):
        component = self._component()
        union = UnionViewDef("book", (component, component))
        sources = {"Amazon": make_amazon()}
        assert len(union.materialize(sources)) == 2 * len(DEFAULT_BOOKS)

    def test_sources_union(self):
        union = UnionViewDef("book", (self._component(),))
        assert union.sources() == frozenset({"Amazon"})


class TestBookstoreFederation:
    QUERIES = [
        '[ln = "Clancy"] and [fn = "Tom"]',
        "[pyear = 1997] and [pmonth = 5]",
        "[ti contains java (near) jdk]",
        '[publisher = "mit"]',
        '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
        'not [ln = "Clancy"]',
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_equivalence(self, text):
        mediator = bookstore_federation()
        assert mediator.check_equivalence(parse_query(text)), text

    def test_one_plan_per_component(self):
        mediator = bookstore_federation()
        answer = mediator.answer_mediated(parse_query('[ln = "Clancy"]'))
        assert len(answer.plans) == 2
        assert {tuple(sorted(p.mappings)) for p in answer.plans} == {
            ("Amazon",),
            ("Clbooks",),
        }

    def test_filters_differ_per_component(self):
        # Amazon enforces the pair exactly (F = true); Clbooks relaxes
        # (F = Q) — per-choice filters are essential for soundness.
        mediator = bookstore_federation()
        answer = mediator.answer_mediated(
            parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        )
        filters = {
            tuple(sorted(p.mappings)): to_text(p.filter) for p in answer.plans
        }
        assert filters[("Amazon",)] == "true"
        assert filters[("Clbooks",)] == '[ln = "Clancy"] and [fn = "Tom"]'

    def test_union_includes_store_specific_stock(self):
        mediator = bookstore_federation()
        answer = mediator.answer_mediated(parse_query('[publisher = "mit"]'))
        titles = {dict(row[0][2])["title"] for row in answer.rows}
        assert titles == {b["title"] for b in CLBOOKS_ONLY_BOOKS}

    def test_shared_stock_appears_once_per_store(self):
        mediator = bookstore_federation()
        answer = mediator.answer_mediated(
            parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        )
        # DEFAULT_BOOKS has 2 Clancy-Tom titles in both stores, plus one
        # Clbooks-only title by Clancy, Tom.
        assert len(answer.rows) == 2 + 2 + 1
