"""Integration: a brand-new integration built *entirely* from data.

The integrator writes a declarative JSON spec and plugs it into the
engine — no Python rule code — and the full pipeline (translate,
capability-checked execution, residue filter) still satisfies
Eq. 1 ≡ Eq. 2.  This is the composition a downstream adopter relies on.
"""

import pytest

from repro.core.parser import parse_query
from repro.engine.capabilities import Capability
from repro.engine.relation import Relation
from repro.engine.source import Source
from repro.engine.views import BaseRef, ViewDef
from repro.mediator import Mediator
from repro.rules.declarative import spec_from_dict

MOVIE_SPEC = {
    "name": "K_films",
    "target": "filmdb",
    "rules": [
        {
            "name": "R_title",
            "match": [{"attr": "title", "op": "=", "bind": "T"}],
            "where": [{"cond": "value_is", "vars": ["T"]}],
            "emit": {"attr": "name", "op": "=", "value": "$T"},
            "exact": True,
        },
        {
            "name": "R_director_pair",
            "doc": "first+last are inter-dependent: the target stores one field",
            "match": [
                {"attr": "dir-ln", "op": "=", "bind": "L"},
                {"attr": "dir-fn", "op": "=", "bind": "F"},
            ],
            "where": [{"cond": "value_is", "vars": ["L", "F"]}],
            "let": [{"var": "N", "fn": "ln_fn_to_name", "args": ["$L", "$F"]}],
            "emit": {"attr": "director", "op": "=", "value": "$N"},
            "exact": True,
        },
        {
            "name": "R_decade",
            "match": [{"attr": "decade", "op": "=", "bind": "D"}],
            "where": [{"cond": "value_is", "vars": ["D"]}],
            "let": [
                {"var": "LO", "fn": "int", "args": ["$D"]},
            ],
            "emit": {
                "all": [
                    {"attr": "year", "op": ">=", "value": "$LO"},
                    {"attr": "year", "op": "<", "value": "$HI"},
                ]
            },
            "exact": True,
        },
    ],
}

FILMS = (
    {"name": "Heat", "director": "Mann, Michael", "year": 1995},
    {"name": "Collateral", "director": "Mann, Michael", "year": 2004},
    {"name": "Alien", "director": "Scott, Ridley", "year": 1979},
    {"name": "Blade Runner", "director": "Scott, Ridley", "year": 1982},
)


def build_mediator() -> Mediator:
    spec_data = {**MOVIE_SPEC}
    # The decade rule needs an upper bound: derive it with a custom fn.
    spec_data["rules"] = list(MOVIE_SPEC["rules"][:2]) + [
        {
            **MOVIE_SPEC["rules"][2],
            "let": [
                {"var": "LO", "fn": "int", "args": ["$D"]},
                {"var": "HI", "fn": "plus10", "args": ["$D"]},
            ],
        }
    ]
    spec = spec_from_dict(spec_data, functions={"plus10": lambda d: int(d) + 10})

    source = Source(
        "filmdb",
        {"films": Relation("films", ("name", "director", "year"), FILMS)},
        Capability.of(
            selections=[
                ("name", "="),
                ("director", "="),
                ("year", ">="),
                ("year", "<"),
            ]
        ),
    )

    def film_row(by_alias):
        row = by_alias["films"]
        ln, fn = row["director"].split(", ")
        return {
            "title": row["name"],
            "dir-ln": ln,
            "dir-fn": fn,
            "decade": (row["year"] // 10) * 10,
        }

    film = ViewDef(
        name="film",
        attributes=("title", "dir-ln", "dir-fn", "decade"),
        bases=(BaseRef("filmdb", "films"),),
        combine=film_row,
    )
    return Mediator(
        views={"film": film},
        sources={"filmdb": source},
        specs={"filmdb": spec},
    )


QUERIES = [
    '[title = "Heat"]',
    '[dir-ln = "Mann"] and [dir-fn = "Michael"]',
    "[decade = 1980]",
    '([dir-ln = "Scott"] and [dir-fn = "Ridley"]) and [decade = 1970]',
    '[decade = 1990] or [decade = 2000]',
    '[dir-ln = "Mann"]',  # uncovered alone: runs as a filter
]


@pytest.mark.parametrize("text", QUERIES)
def test_declarative_mediation_equivalence(text):
    mediator = build_mediator()
    assert mediator.check_equivalence(parse_query(text)), text


def test_decade_emits_year_band():
    from repro.core.printer import to_text
    from repro.core.scm import scm

    mediator = build_mediator()
    spec = mediator.specs["filmdb"]
    mapping = scm(parse_query("[decade = 1980]"), spec)
    assert to_text(mapping) == "[year >= 1980] and [year < 1990]"


def test_filter_keeps_uncovered_director_last_name():
    from repro.core.printer import to_text

    mediator = build_mediator()
    answer = mediator.answer_mediated(parse_query('[dir-ln = "Mann"]'))
    assert to_text(answer.plan.filter) == '[dir-ln = "Mann"]'
    assert len(answer.rows) == 2
