"""Hierarchical data (reference [17]): nested documents behind a source.

The paper claims the framework "is not sensitive to the data models" and
points to reference [17] for hierarchical data.  Here a source stores
nested book documents; attribute references simply use longer paths
(``doc.author.ln``) and the engine descends through the sub-documents.
The mapping rules are unchanged in kind — only their emissions carry the
deeper paths.
"""

import pytest

from repro.core.ast import C, Constraint, attr
from repro.core.errors import EvaluationError
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.scm import scm
from repro.engine.capabilities import Capability
from repro.engine.eval import RowEnv, evaluate
from repro.engine.relation import Relation
from repro.engine.source import Source
from repro.rules.dsl import V, cpat, rule, value_is
from repro.rules.spec import MappingSpecification

NESTED_BOOKS = (
    {
        "title": "The Java JDK Handbook",
        "author": {"ln": "Smith", "fn": "John"},
        "pubinfo": {"house": "oreilly", "year": 1997},
    },
    {
        "title": "WWW and Web Services",
        "author": {"ln": "Clancy", "fn": "Tom"},
        "pubinfo": {"house": "wiley", "year": 1997},
    },
    {
        "title": "Hunt for Data Mining",
        "author": {"ln": "Clancy", "fn": "Tom"},
        "pubinfo": {"house": "putnam", "year": 1994},
    },
)


def nested_source() -> Source:
    return Source(
        "docstore",
        {"books": Relation("books", ("title", "author", "pubinfo"), NESTED_BOOKS)},
        Capability.of(
            selections=[
                ("title", "="),
                ("ln", "="),
                ("fn", "="),
                ("house", "="),
                ("year", "="),
            ]
        ),
    )


class TestHierarchicalResolution:
    def _env(self) -> RowEnv:
        return RowEnv({(("doc",), None): NESTED_BOOKS[0]})

    def test_descend_one_level(self):
        env = self._env()
        assert env.lookup(attr("doc.author.ln")) == "Smith"
        assert env.lookup(attr("doc.pubinfo.year")) == 1997

    def test_top_level_still_direct(self):
        assert self._env().lookup(attr("doc.title")) == "The Java JDK Handbook"

    def test_missing_subdocument(self):
        with pytest.raises(EvaluationError):
            self._env().lookup(attr("doc.publisher.name"))

    def test_missing_leaf_in_subdocument(self):
        with pytest.raises(EvaluationError):
            self._env().lookup(attr("doc.author.middle"))

    def test_evaluate_nested_constraint(self):
        env = self._env()
        assert evaluate(parse_query('[doc.author.ln = "Smith"]'), env)
        assert not evaluate(parse_query('[doc.author.ln = "Clancy"]'), env)

    def test_join_across_subdocuments(self):
        env = RowEnv(
            {
                (("a",), None): {"author": {"ln": "Clancy"}},
                (("b",), None): {"editor": {"ln": "Clancy"}},
            }
        )
        join = Constraint(attr("a.author.ln"), "=", attr("b.editor.ln"))
        assert evaluate(join, env)


class TestHierarchicalSource:
    def test_select_on_nested_attribute(self):
        source = nested_source()
        key = (("doc",), None)
        out = source.select(
            {key: "books"}, parse_query('[doc.author.ln = "Clancy"]')
        )
        titles = {bound[key]["title"] for bound in out}
        assert titles == {"WWW and Web Services", "Hunt for Data Mining"}

    def test_conjunction_over_levels(self):
        source = nested_source()
        key = (("doc",), None)
        q = parse_query(
            '[doc.author.ln = "Clancy"] and [doc.pubinfo.year = 1997]'
        )
        out = source.select({key: "books"}, q)
        assert len(out) == 1


class TestHierarchicalRules:
    """Flat mediator vocabulary -> nested source paths via ordinary rules."""

    SPEC = MappingSpecification(
        "K_docs",
        "docstore",
        rules=(
            rule(
                "R_ln",
                patterns=[cpat("au-ln", "=", V("L"))],
                where=[value_is("L")],
                emit=lambda b: C("doc.author.ln", "=", b["L"]),
                exact=True,
            ),
            rule(
                "R_house",
                patterns=[cpat("publisher", "=", V("P"))],
                where=[value_is("P")],
                emit=lambda b: C("doc.pubinfo.house", "=", b["P"]),
                exact=True,
            ),
        ),
    )

    def test_translation_carries_deep_paths(self):
        q = parse_query('[au-ln = "Clancy"] and [publisher = "wiley"]')
        mapping = scm(q, self.SPEC)
        assert to_text(mapping) == (
            '[doc.author.ln = "Clancy"] and [doc.pubinfo.house = "wiley"]'
        )

    def test_translated_query_executes_natively(self):
        q = parse_query('[au-ln = "Clancy"] and [publisher = "wiley"]')
        mapping = scm(q, self.SPEC)
        source = nested_source()
        key = (("doc",), None)
        out = source.select({key: "books"}, mapping)
        assert [bound[key]["title"] for bound in out] == ["WWW and Web Services"]
