"""repro.perf — fingerprints, the compiled rule index, the LRU cache.

The hot-path layer must be invisible semantically: every test here pins
either an equivalence (indexed == linear, cached == uncached) or an
explicit failure mode (stale index raises, stale cache entries never
hit).
"""

import pytest

from repro.core.ast import And, C, Or
from repro.core.errors import SpecificationError, StaleIndexError
from repro.core.matching import Matcher
from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.obs import trace as obs
from repro.perf import (
    TranslationCache,
    canonical_form,
    query_fingerprint,
    translate_batch,
)
from repro.rules import builtin_specifications
from repro.workloads.generator import (
    simple_conjunction,
    synthetic_spec,
    vocabulary,
)


def _spec(n=8, name="K_t"):
    return synthetic_spec([], singletons=vocabulary(n), name=name)


# -- fingerprint canonicalization ---------------------------------------------


class TestFingerprint:
    def test_identical_queries_agree(self):
        q = parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        assert query_fingerprint(q) == query_fingerprint(q)

    def test_and_commutativity_collapses(self):
        a, b = C("ln", "=", "Clancy"), C("fn", "=", "Tom")
        assert query_fingerprint(And((a, b))) == query_fingerprint(And((b, a)))

    def test_or_commutativity_collapses(self):
        a, b = C("ln", "=", "Clancy"), C("ln", "=", "Klancy")
        assert query_fingerprint(Or((a, b))) == query_fingerprint(Or((b, a)))

    def test_nested_shuffle_collapses(self):
        q1 = parse_query('([a = 1] or [b = 2]) and ([c = 3] or [d = 4])')
        q2 = parse_query('([d = 4] or [c = 3]) and ([b = 2] or [a = 1])')
        assert query_fingerprint(q1) == query_fingerprint(q2)

    def test_distinct_queries_differ(self):
        q1 = parse_query('[ln = "Clancy"]')
        q2 = parse_query('[ln = "Klancy"]')
        q3 = parse_query('[fn = "Clancy"]')
        prints = {query_fingerprint(q) for q in (q1, q2, q3)}
        assert len(prints) == 3

    def test_operator_distinguished(self):
        assert query_fingerprint(C("a", "<", 5)) != query_fingerprint(C("a", "<=", 5))

    def test_value_types_distinguished(self):
        # "1" (str) vs 1 (int) vs 1.0 (float) must not collide: sources
        # treat them differently, so the cache must too.
        prints = {
            query_fingerprint(C("a", "=", value)) for value in ("1", 1, 1.0, True)
        }
        assert len(prints) == 4

    def test_and_or_distinguished(self):
        a, b = C("a", "=", 1), C("b", "=", 2)
        assert query_fingerprint(And((a, b))) != query_fingerprint(Or((a, b)))

    def test_canonical_form_is_stable_text(self):
        q = parse_query('[b = 2] and [a = 1]')
        assert canonical_form(q) == canonical_form(parse_query('[a = 1] and [b = 2]'))


# -- compiled rule index -------------------------------------------------------


class TestCompiledRuleIndex:
    def test_lazy_build_and_reuse(self):
        spec = _spec()
        index = spec.compiled_index()
        assert spec.compiled_index() is index  # cached until mutation
        assert len(index) == len(spec.rules)

    def test_candidates_are_superset_of_matching_rules(self):
        attrs = vocabulary(12)
        spec = synthetic_spec(
            [(attrs[0], attrs[1])], singletons=attrs[2:8], name="K_sup"
        )
        index = spec.compiled_index()
        query = simple_conjunction(attrs[:6], 0)
        constraints = list(query.constraints())
        candidates = {r.name for r in index.candidate_rules(constraints)}
        # Brute force: every rule with at least one matching must be a candidate.
        matcher = Matcher(spec.rules)
        for matching in matcher.potential(frozenset(constraints)):
            assert matching.rule_name in candidates

    def test_indexed_matchings_equal_linear(self):
        attrs = vocabulary(10)
        spec = synthetic_spec(
            [(attrs[0], attrs[1]), (attrs[2], attrs[3])],
            singletons=attrs,
            name="K_eq",
        )
        query = simple_conjunction(attrs[:7], 3)
        universe = frozenset(query.constraints())
        linear = Matcher(spec.rules).potential(universe)
        indexed = spec.matcher().potential(universe)
        def key(m):
            return (m.rule_name, sorted(map(str, m.constraints)))

        assert sorted(linear, key=key) == sorted(indexed, key=key)

    def test_index_length_mismatch_rejected(self):
        spec, other = _spec(name="K_a"), _spec(4, name="K_b")
        from repro.core.errors import RuleError

        with pytest.raises(RuleError):
            Matcher(other.rules, index=spec.compiled_index())

    def test_stale_after_add_rule(self):
        spec = _spec()
        index = spec.compiled_index()
        matcher = Matcher(spec.rules, index=index)
        template = spec.rules[0]
        from repro.core.matching import Rule

        spec.add_rule(Rule("extra", template.patterns, template.emit))
        with pytest.raises(StaleIndexError):
            index.candidate_ids({"a0"})
        with pytest.raises(StaleIndexError):
            matcher.potential(frozenset({C("a0", "=", 1)}))

    def test_stale_after_remove_rule(self):
        spec = _spec()
        index = spec.compiled_index()
        spec.remove_rule(spec.rules[0].name)
        with pytest.raises(StaleIndexError):
            index.candidate_ids({"a0"})

    def test_fresh_matcher_after_mutation(self):
        spec = _spec()
        spec.compiled_index()
        removed = spec.remove_rule("R_a0")
        assert removed.name == "R_a0"
        # spec.matcher() rebuilds the index for the new version.
        result = tdqm_translate(simple_conjunction(["a1"], 0), spec)
        assert result.mapping is not None
        assert spec.compiled_index().version == spec.version


# -- specification versioning --------------------------------------------------


class TestSpecVersioning:
    def test_version_bumps_on_mutation(self):
        spec = _spec()
        v0 = spec.version
        template = spec.rules[0]
        from repro.core.matching import Rule

        spec.add_rule(Rule("extra", template.patterns, template.emit))
        v1 = spec.version
        spec.remove_rule("extra")
        v2 = spec.version
        assert v0 < v1 < v2

    def test_versions_unique_across_specs(self):
        assert _spec(name="K_x").version != _spec(name="K_y").version

    def test_duplicate_rule_name_rejected(self):
        spec = _spec()
        template = spec.rules[0]
        from repro.core.matching import Rule

        v = spec.version
        with pytest.raises(SpecificationError):
            spec.add_rule(Rule(template.name, template.patterns, template.emit))
        assert spec.version == v  # failed mutation must not bump

    def test_remove_missing_rule_rejected(self):
        spec = _spec()
        with pytest.raises(SpecificationError):
            spec.remove_rule("no-such-rule")


# -- translation cache ---------------------------------------------------------


class TestTranslationCache:
    def test_hit_returns_same_object(self):
        spec = _spec()
        cache = TranslationCache()
        q = simple_conjunction(vocabulary(4), 0)
        first = cache.tdqm(q, spec)
        second = cache.tdqm(q, spec)
        assert first is second
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_hit_equals_uncached(self):
        spec = _spec()
        cache = TranslationCache()
        q = parse_query("([a0 = 1] or [a1 = 2]) and [a2 = 3]")
        cache.tdqm(q, spec)
        hit = cache.tdqm(q, spec)
        direct = tdqm_translate(q, spec)
        assert hit.mapping == direct.mapping
        assert hit.exact == direct.exact

    def test_commuted_query_hits(self):
        spec = _spec()
        cache = TranslationCache()
        cache.tdqm(parse_query("[a0 = 1] and [a1 = 2]"), spec)
        cache.tdqm(parse_query("[a1 = 2] and [a0 = 1]"), spec)
        assert cache.stats.hits == 1

    def test_distinct_specs_do_not_collide(self):
        cache = TranslationCache()
        q = simple_conjunction(["a0"], 0)
        cache.tdqm(q, _spec(name="K_one"))
        cache.tdqm(q, _spec(name="K_two"))
        assert cache.stats.misses == 2

    def test_lru_eviction_order(self):
        spec = _spec()
        cache = TranslationCache(maxsize=2)
        q1, q2, q3 = (simple_conjunction(["a0"], s) for s in (0, 1, 2))
        cache.tdqm(q1, spec)
        cache.tdqm(q2, spec)
        cache.tdqm(q1, spec)  # touch q1: q2 becomes LRU
        cache.tdqm(q3, spec)  # evicts q2
        assert cache.stats.evictions == 1
        cache.tdqm(q1, spec)  # still cached
        assert cache.stats.misses == 3
        cache.tdqm(q2, spec)  # evicted: miss again
        assert cache.stats.misses == 4

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            TranslationCache(maxsize=0)

    def test_mutation_invalidates_logically(self):
        spec = _spec()
        cache = TranslationCache()
        q = simple_conjunction(["a0"], 0)
        cache.tdqm(q, spec)
        from repro.core.matching import Rule

        template = spec.rules[0]
        spec.add_rule(Rule("extra", template.patterns, template.emit))
        cache.tdqm(q, spec)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_invalidate_by_spec(self):
        cache = TranslationCache()
        one, two = _spec(name="K_one"), _spec(name="K_two")
        q = simple_conjunction(["a0"], 0)
        cache.tdqm(q, one)
        cache.tdqm(q, two)
        assert cache.invalidate(one) == 1
        assert len(cache) == 1
        assert cache.invalidate("K_two") == 1
        assert len(cache) == 0

    def test_clear(self):
        spec = _spec()
        cache = TranslationCache()
        cache.tdqm(simple_conjunction(["a0"], 0), spec)
        cache.clear()
        assert len(cache) == 0

    def test_clear_emits_invalidations_counter(self):
        spec = _spec()
        cache = TranslationCache()
        with obs.tracing("t") as tracer:
            cache.tdqm(simple_conjunction(["a0"], 0), spec)
            cache.tdqm(simple_conjunction(["a1"], 1), spec)
            cache.clear()
            cache.clear()  # empty: nothing dropped, nothing counted
        assert cache.stats.invalidations == 2
        assert tracer.counters["perf.cache.invalidations"] == 2

    def test_invalidate_emits_invalidations_counter(self):
        cache = TranslationCache()
        one, two = _spec(name="K_one"), _spec(name="K_two")
        q = simple_conjunction(["a0"], 0)
        with obs.tracing("t") as tracer:
            cache.tdqm(q, one)
            cache.tdqm(q, two)
            assert cache.invalidate(one) == 1
            assert cache.invalidate("K_absent") == 0  # no-op: not counted
        assert cache.stats.invalidations == 1
        assert tracer.counters["perf.cache.invalidations"] == 1

    def test_dnf_cached(self):
        spec = _spec()
        cache = TranslationCache()
        q = parse_query("[a0 = 1] or [a1 = 2]")
        first = cache.dnf(q, spec)
        assert cache.dnf(q, spec) is first
        from repro.core.dnf_mapper import dnf_map_translate

        assert dnf_map_translate(q, spec).mapping == first.mapping

    def test_tdqm_entry_point_uses_cache(self):
        spec = _spec()
        cache = TranslationCache()
        q = simple_conjunction(["a0", "a1"], 0)
        assert tdqm_translate(q, spec, cache=cache) is tdqm_translate(
            q, spec, cache=cache
        )

    def test_traced_runs_bypass_cache(self):
        spec = _spec()
        cache = TranslationCache()
        q = simple_conjunction(["a0"], 0)
        trace: list[str] = []
        tdqm_translate(q, spec, trace, cache=cache)
        assert trace  # narration happened: the cache was not consulted
        assert len(cache) == 0


# -- batch translation ---------------------------------------------------------


class TestTranslateBatch:
    def test_matches_per_query_translation(self):
        specs = {
            name: spec
            for name, spec in builtin_specifications().items()
            if name in ("K_Amazon", "K_map")
        }
        queries = [
            parse_query('[ln = "Clancy"] and [fn = "Tom"]'),
            parse_query("[pyear = 1997] and [pmonth = 5]"),
        ]
        batched = translate_batch(queries, specs)
        for query, per_spec in zip(queries, batched):
            assert set(per_spec) == set(specs)
            for name, spec in specs.items():
                direct = tdqm_translate(query, spec)
                assert per_spec[name].mapping == direct.mapping
                assert per_spec[name].exact == direct.exact

    def test_duplicates_share_entries(self):
        spec = _spec()
        q = simple_conjunction(vocabulary(4), 0)
        cache = TranslationCache()
        results = translate_batch([q, q, q], {"K_t": spec}, cache=cache)
        assert results[0]["K_t"] is results[1]["K_t"] is results[2]["K_t"]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_empty_batch(self):
        assert translate_batch([], {"K_t": _spec()}) == []


# -- mediator integration ------------------------------------------------------


class TestMediatorIntegration:
    def test_translate_many_and_cache_reuse(self):
        from repro.mediator import bookstore_mediator

        mediator = bookstore_mediator("amazon")
        out = mediator.translate_many(
            ['[ln = "Clancy"] and [fn = "Tom"]', '[fn = "Tom"] and [ln = "Clancy"]']
        )
        assert len(out) == 2
        assert out[0]["Amazon"] is out[1]["Amazon"]  # commuted repeat hits

    def test_translate_many_unknown_source(self):
        from repro.core.errors import TranslationError
        from repro.mediator import bookstore_mediator

        with pytest.raises(TranslationError):
            bookstore_mediator("amazon").translate_many(["[a = 1]"], sources=["nope"])

    def test_answers_identical_with_and_without_cache(self):
        from repro.mediator import bookstore_mediator

        query = parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        cached = bookstore_mediator("amazon")
        uncached = bookstore_mediator("amazon")
        uncached.translation_cache = None
        assert sorted(map(str, cached.answer_mediated(query).rows)) == sorted(
            map(str, uncached.answer_mediated(query).rows)
        )
        assert cached.translation_cache.stats.misses > 0


# -- the batch CLI -------------------------------------------------------------


class TestBatchCli:
    def test_batch_text_output(self, capsys):
        from repro.cli import main

        assert main(["batch", "K_Amazon", '[ln = "Clancy"] and [fn = "Tom"]']) == 0
        out = capsys.readouterr().out
        assert "S(K_Amazon)" in out
        assert "Clancy, Tom" in out

    def test_batch_json_with_cache_stats(self, capsys):
        import json

        from repro.cli import main

        code = main(
            [
                "batch",
                "K_Amazon,K_map",
                '[ln = "Clancy"]',
                '[ln = "Clancy"]',
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert payload["cache"]["hits"] >= 1  # the duplicate hit

    def test_batch_queries_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "queries.txt"
        path.write_text('# comment\n[ln = "Clancy"]\n\n[pyear = 1997]\n')
        assert main(["batch", "K_Amazon", "--queries-file", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("Q = ") == 2

    def test_batch_no_queries_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["batch", "K_Amazon"])
