"""Tests for semantics-preserving rule consolidation (repro.analysis.consolidate)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    MergeProposal,
    apply_proposals,
    candidate_pairs,
    consolidate_spec,
)
from repro.core.ast import conj
from repro.core.parser import parse_query
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import tdqm_translate
from repro.rules import builtin_specifications
from repro.rules.library_realty import K_REALTY
from repro.workloads.generator import consolidation_workload

ALL_SPECS = list(builtin_specifications().values()) + [K_REALTY]


class TestCandidatePairs:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_indexed_equals_all_pairs_on_builtins(self, spec):
        indexed, _ = candidate_pairs(spec)
        exhaustive, _ = candidate_pairs(spec, all_pairs=True)
        assert indexed == exhaustive

    def test_indexed_equals_all_pairs_on_planted_workload(self):
        spec, duplicates, decoys = consolidation_workload(
            120, duplicate_every=10, decoy_every=17
        )
        indexed, stats = candidate_pairs(spec)
        exhaustive, all_stats = candidate_pairs(spec, all_pairs=True)
        assert indexed == exhaustive
        assert len(indexed) == len(duplicates) + len(decoys)
        # Pruning is real: examined counts differ by orders of magnitude.
        assert stats.pairs_examined == len(duplicates) + len(decoys)
        assert all_stats.pairs_examined == all_stats.pairs_possible
        assert stats.pruning_factor > 50

    def test_stats_to_dict(self):
        spec, _, _ = consolidation_workload(30, duplicate_every=10)
        _, stats = candidate_pairs(spec)
        payload = stats.to_dict()
        assert payload["rules"] == len(spec.rules)
        assert payload["pairs_examined"] == 3
        assert payload["pruning_factor"] == round(stats.pruning_factor, 2)


class TestConsolidateSpec:
    def test_builtins_have_nothing_to_merge(self):
        for spec in ALL_SPECS:
            result = consolidate_spec(spec)
            assert result.proposals == (), (
                f"{spec.name}: unexpected proposals "
                f"{[str(p) for p in result.proposals]}"
            )

    def test_planted_duplicates_found_and_decoys_spared(self):
        spec, duplicates, decoys = consolidation_workload(
            60, duplicate_every=10, decoy_every=13
        )
        result = consolidate_spec(spec)
        assert sorted(p.drop for p in result.proposals) == sorted(duplicates)
        touched = {p.drop for p in result.proposals} | {
            p.keep for p in result.proposals
        }
        assert not touched & set(decoys)
        for proposal in result.proposals:
            assert proposal.verified
            assert proposal.kind == "duplicate"
            assert proposal.evidence  # per-group machine-checked stamps

    def test_every_proposal_is_prop_equivalent_verified(self):
        """Re-run the semantic check the proposals claim to have passed."""
        spec, _, _ = consolidation_workload(40, duplicate_every=8)
        matcher = spec.matcher()
        result = consolidate_spec(spec)
        assert result.proposals
        for proposal in result.proposals:
            keep = spec.get_rule(proposal.keep)
            drop = spec.get_rule(proposal.drop)
            assert keep is not None and drop is not None
            for _, stamp in proposal.evidence:
                assert "keep emits" in stamp

    def test_result_to_dict(self):
        spec, duplicates, _ = consolidation_workload(20, duplicate_every=10)
        payload = consolidate_spec(spec).to_dict()
        assert payload["spec"] == spec.name
        assert len(payload["proposals"]) == len(duplicates)
        assert payload["stats"]["pairs_examined"] == len(duplicates)


class TestApplyProposals:
    def test_apply_preserves_translation_semantics(self):
        spec, duplicates, _ = consolidation_workload(20, duplicate_every=5)
        result = consolidate_spec(spec)
        slim = apply_proposals(spec, result.proposals)
        assert len(slim.rules) == len(spec.rules) - len(duplicates)
        # The original is untouched.
        assert len(spec.rules) == 24
        # Every query translates identically before and after.
        for text in ('[a0 = "3"]', '[a5 = "1"] and [a7 = "2"]'):
            query = parse_query(text)
            before = tdqm_translate(query, spec)
            after = tdqm_translate(query, slim)
            assert prop_equivalent(
                conj(sorted((before.mapping, after.mapping), key=str)),
                before.mapping,
            )
            assert prop_equivalent(
                conj(sorted((before.mapping, after.mapping), key=str)),
                after.mapping,
            )
        # Consolidation converged: nothing left to merge.
        assert consolidate_spec(slim).proposals == ()

    def test_refuses_unverified_proposal(self):
        spec, _, _ = consolidation_workload(10, duplicate_every=5)
        bogus = MergeProposal(
            spec=spec.name,
            keep="R_a0",
            drop="R_a0__dup",
            kind="duplicate",
            groups=(),
            verified=False,
        )
        with pytest.raises(ValueError, match="unverified"):
            apply_proposals(spec, (bogus,))

    def test_refuses_foreign_proposal(self):
        spec, _, _ = consolidation_workload(10, duplicate_every=5)
        foreign = MergeProposal(
            spec="K_other",
            keep="R_a0",
            drop="R_a0__dup",
            kind="duplicate",
            groups=(),
            verified=True,
        )
        with pytest.raises(ValueError, match="targets"):
            apply_proposals(spec, (foreign,))
