"""Property-based tests (hypothesis) for the vocablint analyzer.

The headline property mechanizes the acceptance bar for the builtin
libraries: they lint clean, so on *randomized* head bindings — not just
the deterministic ones the sampler synthesizes — no rule may produce a
matching whose emission provably (or even propositionally) fails to
subsume the matched group (Definition 3).  A second property checks the
report container's ordering/filtering invariants on arbitrary
diagnostics.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CATALOG,
    Diagnostic,
    LintReport,
    Severity,
    SubsumptionVerdict,
    classify_subsumption,
    harvest_literals,
)
from repro.analysis.diagnostics import diagnostic_order
from repro.analysis.sampling import _collect_var_hints, _pattern_candidates
from repro.core.ast import C, Constraint, conj, disj, neg
from repro.core.matching import Matching, RejectMatch, match_rule
from repro.core.subsume import prop_implies
from repro.rules import builtin_specifications
from repro.rules.library_realty import K_REALTY
from repro.text.patterns import Word

SPECS = list(builtin_specifications().values()) + [K_REALTY]
LITERALS = {spec.name: harvest_literals(spec) for spec in SPECS}

#: (spec, rule) pairs with the candidate pool for each head pattern.
CASES = []
for spec in SPECS:
    literals = LITERALS[spec.name]
    for rule in spec.rules:
        var_hints, table_keys = _collect_var_hints(rule)
        pools = [
            _pattern_candidates(pattern, var_hints, table_keys, literals, None)
            for pattern in rule.patterns
        ]
        CASES.append((spec.name, rule, pools))

words = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=8)


def _randomize(constraint: Constraint, data) -> Constraint:
    """Optionally swap a textual rhs for a hypothesis-drawn one."""
    rhs = constraint.rhs
    if isinstance(rhs, str):
        rhs = data.draw(st.one_of(st.just(rhs), words), label="rhs")
    elif isinstance(rhs, Word):
        drawn = data.draw(st.one_of(st.none(), words), label="word")
        if drawn is not None:
            rhs = Word(drawn)
    else:
        return constraint
    return Constraint(constraint.lhs, constraint.op, rhs)


class TestBuiltinSoundness:
    @given(data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_no_builtin_rule_emits_unsoundly(self, data):
        spec_name, rule, pools = data.draw(st.sampled_from(CASES), label="rule")
        combo = tuple(
            _randomize(data.draw(st.sampled_from(pool), label=f"p{i}"), data)
            for i, pool in enumerate(pools)
        )
        assume(len(set(combo)) == len(combo))
        try:
            matchings = match_rule(rule, combo)
        except RejectMatch:
            return
        except Exception:  # noqa: BLE001
            # An off-type candidate crashed a conversion function.  The
            # sampler tolerates these (they become VM011 only when no
            # binding at all fires); the soundness property is about
            # matchings that DO exist.
            return
        for matching in matchings:
            verdict = classify_subsumption(matching)
            assert verdict not in (
                SubsumptionVerdict.CONFIRMED,
                SubsumptionVerdict.SUSPECTED,
            ), (
                f"{spec_name}:{rule.name} emitted {matching.emission} for "
                f"group {sorted(map(str, matching.constraints))} "
                f"({verdict.value})"
            )


_atoms = st.builds(
    C,
    st.sampled_from(["a", "b", "c", "d"]),
    st.just("="),
    st.integers(min_value=0, max_value=2),
)


def _emission_over(group: tuple) -> st.SearchStrategy:
    """Boolean combinations built purely over the group's own atoms."""
    base = st.sampled_from(group)
    return st.recursive(
        base,
        lambda child: st.one_of(
            st.lists(child, min_size=2, max_size=3).map(conj),
            st.lists(child, min_size=2, max_size=3).map(disj),
            child.map(neg),
        ),
        max_leaves=6,
    )


class TestSubsumptionAgreement:
    """The classifier is decisive, and right, in the Theorem 1 setting.

    When the emission is built purely from the matched constraints, the
    atoms coincide, so propositional implication is the ground truth:
    the verdict must be SOUND exactly when ``prop_implies(group,
    emission)`` holds, and CONFIRMED otherwise — never SUSPECTED or
    UNVERIFIABLE.
    """

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_classifier_agrees_with_prop_implies(self, data):
        group = data.draw(
            st.lists(_atoms, min_size=1, max_size=4, unique_by=str),
            label="group",
        )
        emission = data.draw(_emission_over(tuple(group)), label="emission")
        matching = Matching(
            constraints=frozenset(group), rule_name="R", emission=emission
        )
        verdict = classify_subsumption(matching)
        assert verdict in (
            SubsumptionVerdict.SOUND,
            SubsumptionVerdict.CONFIRMED,
        ), f"indecisive verdict {verdict.value} on same-atom emission"
        implied = prop_implies(conj(sorted(group, key=str)), emission)
        assert (verdict is SubsumptionVerdict.SOUND) == implied, (
            f"verdict {verdict.value} disagrees with prop_implies={implied} "
            f"for group {sorted(map(str, group))} and emission {emission}"
        )


diagnostics = st.builds(
    Diagnostic,
    code=st.sampled_from(sorted(CATALOG)),
    severity=st.sampled_from(list(Severity)),
    spec=st.just("K"),
    message=words,
    rule=st.one_of(st.none(), words),
)


class TestReportInvariants:
    @given(items=st.lists(diagnostics, max_size=12))
    @settings(deadline=None)
    def test_ordering_and_filters(self, items):
        report = LintReport(spec="K", diagnostics=tuple(items), stats=())
        keys = [diagnostic_order(d) for d in report.diagnostics]
        assert keys == sorted(keys)
        # The order is deterministic: independent of input permutation.
        shuffled = LintReport(
            spec="K", diagnostics=tuple(reversed(items)), stats=()
        )
        assert shuffled.diagnostics == report.diagnostics
        assert len(report.errors) + len(report.warnings) + report.counts()[
            "info"
        ] == len(report)
        for threshold in Severity:
            kept = report.filter(severity=threshold)
            assert all(d.severity >= threshold for d in kept)
            # Filtering is idempotent and never invents diagnostics.
            assert kept.filter(severity=threshold).diagnostics == kept.diagnostics
            assert set(kept.diagnostics) <= set(report.diagnostics)
