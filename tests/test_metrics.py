"""Unit tests for compactness metrics (repro.core.metrics)."""

from repro.core.ast import TRUE, C, conj, disj
from repro.core.metrics import compactness, compactness_ratio, query_stats
from repro.core.parser import parse_query


class TestQueryStats:
    def test_single_constraint(self):
        stats = query_stats(C("a", "=", 1))
        assert stats.node_count == 1
        assert stats.leaf_count == 1
        assert stats.depth == 1
        assert stats.and_nodes == stats.or_nodes == 0
        assert stats.dnf_terms == 1

    def test_tree(self):
        q = parse_query("([a = 1] or [b = 2]) and ([c = 3] or [d = 4])")
        stats = query_stats(q)
        assert stats.node_count == 7
        assert stats.leaf_count == 4
        assert stats.and_nodes == 1
        assert stats.or_nodes == 2
        assert stats.depth == 3
        assert stats.dnf_terms == 4

    def test_distinct_vs_leaves(self):
        a = C("a", "=", 1)
        q = disj([conj([a, C("b", "=", 2)]), a])
        stats = query_stats(q)
        assert stats.leaf_count == 3
        assert stats.distinct_constraints == 2

    def test_constants(self):
        stats = query_stats(TRUE)
        assert stats.node_count == 1
        assert stats.dnf_terms == 1

    def test_str_rendering(self):
        assert "nodes=" in str(query_stats(C("a", "=", 1)))


class TestCompactness:
    def test_measure_is_node_count(self):
        q = parse_query("[a = 1] and [b = 2]")
        assert compactness(q) == 3

    def test_ratio(self):
        small = C("a", "=", 1)
        big = parse_query("([a = 1] and [b = 2]) or ([a = 1] and [c = 3])")
        assert compactness_ratio(big, small) == 7.0

    def test_ratio_guards_zero(self):
        assert compactness_ratio(TRUE, TRUE) == 1.0
