"""Shared fixtures for the vocabmap test suite."""

from __future__ import annotations

import pytest

from repro.mediator import bookstore_mediator, faculty_mediator, map_mediator
from repro.rules import K1, K2, K_AMAZON, K_CLBOOKS, K_MAP


@pytest.fixture(scope="session")
def amazon_spec():
    return K_AMAZON


@pytest.fixture(scope="session")
def clbooks_spec():
    return K_CLBOOKS


@pytest.fixture(scope="session")
def k1_spec():
    return K1


@pytest.fixture(scope="session")
def k2_spec():
    return K2


@pytest.fixture(scope="session")
def kmap_spec():
    return K_MAP


@pytest.fixture()
def amazon_mediator():
    return bookstore_mediator("amazon")


@pytest.fixture()
def clbooks_mediator():
    return bookstore_mediator("clbooks")


@pytest.fixture()
def fac_mediator():
    return faculty_mediator()


@pytest.fixture()
def geo_mediator():
    return map_mediator()
