"""Integration tests: resilient mediation end to end (partial answers,
strict mode, fan-out, breaker behaviour, stats surfacing)."""

from __future__ import annotations

import pytest

from repro.core.errors import SourceUnavailableError
from repro.core.parser import parse_query
from repro.mediator import bookstore_federation, faculty_mediator, synthetic_federation
from repro.obs import trace as obs
from repro.obs.stats import collect_stats, render_stats, stats_to_dict
from repro.resilience import (
    FAILED,
    OK,
    RETRIED,
    SKIPPED,
    TIMED_OUT,
    BreakerPolicy,
    FaultPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.rules import K_AMAZON

THREE_SOURCE_QUERY = parse_query("[v0.a0 = 2] and [v1.a1 = 3] and [v2.a2 = 4]")


def no_sleep(seconds: float) -> None:
    pass


def quick_config(**kwargs) -> ResilienceConfig:
    """A config that never really sleeps (tests stay fast)."""
    kwargs.setdefault("retry", RetryPolicy(retries=2, backoff_base=0.0, jitter=0.0))
    kwargs.setdefault("sleep", no_sleep)
    return ResilienceConfig(**kwargs)


def fail_twice() -> FaultPolicy:
    return FaultPolicy.fail_n(2, sleep=no_sleep)


class TestAcceptanceScenario:
    """ISSUE 4's acceptance criterion: one of three sources fails twice
    then recovers."""

    def test_default_mode_partial_then_recovered(self):
        config = quick_config(
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policies={"S1": fail_twice()},
        )
        mediator = synthetic_federation(resilience=config)

        first = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert not first.complete
        assert first.rows == []
        assert first.failed_sources == ["S1"]
        by_source = {o.source: o for o in first.outcomes}
        assert by_source["S0"].status == OK
        assert by_source["S1"].status == FAILED
        assert by_source["S2"].status == OK

        second = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert not second.complete

        third = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert third.complete
        assert len(third.rows) == 1

    def test_strict_mode_raises(self):
        config = quick_config(
            retry=RetryPolicy(retries=0, jitter=0.0),
            strict=True,
            fault_policies={"S1": fail_twice()},
        )
        mediator = synthetic_federation(resilience=config)
        with pytest.raises(SourceUnavailableError) as excinfo:
            mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert "S1" in str(excinfo.value)
        assert [o.status for o in excinfo.value.outcomes] == [FAILED]

    def test_strict_override_per_call(self):
        config = quick_config(
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policies={"S1": fail_twice()},
        )
        mediator = synthetic_federation(resilience=config)
        with pytest.raises(SourceUnavailableError):
            mediator.answer_mediated(THREE_SOURCE_QUERY, strict=True)
        # Default (non-strict) still returns the partial second answer.
        answer = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert not answer.complete

    def test_retries_absorb_the_failures(self):
        config = quick_config(fault_policies={"S1": fail_twice()})
        mediator = synthetic_federation(resilience=config)
        with obs.tracing("t") as tracer:
            answer = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert answer.complete
        assert len(answer.rows) == 1
        by_source = {o.source: o for o in answer.outcomes}
        assert by_source["S1"].status == RETRIED
        assert tracer.counters["resilience.calls"] == 3
        assert tracer.counters["resilience.retries"] == 2


class TestFanOut:
    def test_concurrent_rows_match_serial(self):
        serial = synthetic_federation(resilience=quick_config(max_workers=1))
        concurrent = synthetic_federation(resilience=quick_config(max_workers=8))
        plain = synthetic_federation()
        expected = sorted(plain.answer_mediated(THREE_SOURCE_QUERY).rows)
        assert sorted(serial.answer_mediated(THREE_SOURCE_QUERY).rows) == expected
        assert sorted(concurrent.answer_mediated(THREE_SOURCE_QUERY).rows) == expected

    def test_faculty_mediator_with_resilience_matches_plain(self):
        query = parse_query('[fac.dept = cs] and [fac.ln = "Chang"]')
        plain = faculty_mediator()
        resilient = plain.with_resilience(quick_config())
        assert sorted(resilient.answer_mediated(query).rows) == sorted(
            plain.answer_mediated(query).rows
        )
        assert resilient.answer_mediated(query).complete

    def test_equivalence_check_still_holds_under_resilience(self):
        mediator = synthetic_federation(resilience=quick_config())
        assert mediator.check_equivalence(THREE_SOURCE_QUERY)


class TestPartialAnswers:
    def test_union_federation_degrades_to_surviving_component(self):
        config = quick_config(
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policies={"Clbooks": FaultPolicy.fail_n(100, sleep=no_sleep)},
        )
        mediator = bookstore_federation().with_resilience(config)
        query = parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        answer = mediator.answer_mediated(query)
        assert not answer.complete
        assert answer.failed_sources == ["Clbooks"]
        # The Amazon component still answers: partial, not empty.
        assert len(answer.rows) > 0
        plain_rows = bookstore_federation().answer_mediated(query).rows
        assert len(answer.rows) < len(plain_rows)
        assert set(answer.rows) <= set(plain_rows)

    def test_timeout_yields_timed_out_outcome(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        config = ResilienceConfig(
            timeout=0.2,
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policies={"S1": FaultPolicy.latency_spike(0.5, sleep=fake_sleep)},
            clock=fake_clock,
            sleep=fake_sleep,
            max_workers=1,
        )
        mediator = synthetic_federation(resilience=config)
        answer = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert not answer.complete
        statuses = {o.source: o.status for o in answer.outcomes}
        assert statuses["S1"] == TIMED_OUT

    def test_breaker_opens_then_skips(self):
        config = quick_config(
            retry=RetryPolicy(retries=0, jitter=0.0),
            breaker=BreakerPolicy(failure_threshold=2, cooldown=1000.0),
            fault_policies={"S1": FaultPolicy.fail_n(100, sleep=no_sleep)},
        )
        mediator = synthetic_federation(resilience=config)
        statuses = []
        with obs.tracing("t") as tracer:
            for _ in range(3):
                answer = mediator.answer_mediated(THREE_SOURCE_QUERY)
                statuses.append(
                    {o.source: o.status for o in answer.outcomes}["S1"]
                )
        assert statuses == [FAILED, FAILED, SKIPPED]
        assert tracer.counters["resilience.breaker_transitions"] >= 1
        assert tracer.counters["resilience.skipped_open_circuit"] == 1

    def test_plain_mediator_answers_stay_complete(self):
        mediator = synthetic_federation()
        answer = mediator.answer_mediated(THREE_SOURCE_QUERY)
        assert answer.complete
        assert answer.outcomes == []
        assert answer.failed_sources == []


class TestWithResilience:
    def test_round_trip_restores_plain_sources(self):
        from repro.engine.source import Source

        resilient = synthetic_federation(resilience=quick_config())
        plain = resilient.with_resilience(None)
        assert plain.resilience is None
        assert all(type(s) is Source for s in plain.sources.values())
        assert plain.translation_cache is resilient.translation_cache

    def test_reconfigure_does_not_stack_adapters(self):
        first = synthetic_federation(resilience=quick_config())
        second = first.with_resilience(quick_config(timeout=5.0))
        from repro.engine.source import Source

        for adapter in second.sources.values():
            assert type(adapter.source) is Source
            assert adapter.timeout == 5.0


class TestStatsSurface:
    def test_collect_stats_reports_outcomes_and_counters(self):
        config = quick_config(fault_policies={"Amazon": fail_twice()})
        report = collect_stats(
            '[ln = "Clancy"] and [fn = "Tom"]',
            {"K_Amazon": K_AMAZON},
            mediator=_amazon_mediator(),
            resilience=config,
        )
        assert report.complete
        assert report.outcomes is not None
        assert report.outcomes[0].status == RETRIED
        assert report.tracer.counters["resilience.retries"] == 2
        text = render_stats(report)
        assert "complete = True" in text
        assert "sources:" in text and "retried" in text
        data = stats_to_dict(report)
        assert data["complete"] is True
        assert data["sources"][0]["status"] == RETRIED
        assert data["counters"]["resilience.retries"] == 2

    def test_collect_stats_without_resilience_has_no_sources_section(self):
        report = collect_stats(
            '[ln = "Clancy"]', {"K_Amazon": K_AMAZON}, mediator=_amazon_mediator()
        )
        assert report.outcomes is None
        assert "sources" not in stats_to_dict(report)
        assert "complete" not in render_stats(report)

    def test_collect_stats_strict_propagates(self):
        config = quick_config(
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policies={"Amazon": fail_twice()},
        )
        with pytest.raises(SourceUnavailableError):
            collect_stats(
                '[ln = "Clancy"]',
                {"K_Amazon": K_AMAZON},
                mediator=_amazon_mediator(),
                resilience=config,
                strict=True,
            )


def _amazon_mediator():
    from repro.mediator import bookstore_mediator

    return bookstore_mediator("amazon")
