"""Unit tests for repro.resilience: policies, breaker, faults, adapter."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    SourceUnavailableError,
    TransientSourceError,
    VocabMapError,
)
from repro.core.parser import parse_query
from repro.engine.sources_builtin import make_amazon
from repro.obs import trace as obs
from repro.resilience import (
    CLOSED,
    FAILED,
    HALF_OPEN,
    OK,
    OPEN,
    RETRIED,
    SKIPPED,
    TIMED_OUT,
    BreakerPolicy,
    CircuitBreaker,
    FaultPolicy,
    ResilienceConfig,
    RetryPolicy,
    SourceAdapter,
    record_outcome,
    wrap_sources,
)

KEY = ((), None)
AMAZON_QUERY = parse_query('[author = "Clancy, Tom"]')


class FakeTime:
    """A monotonic clock advanced only by (fake) sleeping."""

    def __init__(self):
        self.now = 0.0
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class StubSource:
    """Minimal duck-typed source counting executions."""

    name = "stub"
    relations: dict = {}
    capability = None
    virtuals: dict = {}
    grammar = None

    def __init__(self, rows=({"k": 1},), error: Exception | None = None):
        self._rows = list(rows)
        self._error = error
        self.calls = 0

    def execute(self, instances, query):
        self.calls += 1
        if self._error is not None:
            raise self._error
        return list(self._rows)

    def ping(self):
        return {"source": self.name, "relations": {}, "rows": len(self._rows)}


class TestRetryPolicy:
    def test_attempts_is_retries_plus_one(self):
        assert RetryPolicy(retries=0).attempts == 1
        assert RetryPolicy(retries=3).attempts == 4

    def test_schedule_is_deterministic_per_seed(self):
        policy = RetryPolicy(retries=4, seed=7)
        assert policy.schedule() == policy.schedule()
        assert policy.schedule() != RetryPolicy(retries=4, seed=8).schedule()

    def test_schedule_without_jitter_is_exact_doubling(self):
        policy = RetryPolicy(
            retries=3, backoff_base=0.1, backoff_multiplier=2.0,
            backoff_max=10.0, jitter=0.0,
        )
        assert policy.schedule() == pytest.approx([0.1, 0.2, 0.4])

    def test_delays_capped_at_backoff_max(self):
        policy = RetryPolicy(
            retries=6, backoff_base=1.0, backoff_multiplier=10.0,
            backoff_max=2.0, jitter=0.0,
        )
        assert max(policy.schedule()) == pytest.approx(2.0)

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            retries=20, backoff_base=1.0, backoff_multiplier=1.0,
            backoff_max=1.0, jitter=0.5, seed=3,
        )
        for delay in policy.schedule():
            assert 1.0 <= delay <= 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff_base": -0.1},
            {"backoff_max": -1.0},
            {"backoff_multiplier": 0.5},
            {"jitter": -0.01},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBreakerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown=-1)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        time = FakeTime()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=threshold, cooldown=cooldown),
            clock=time.clock,
            name="b",
        )
        return breaker, time

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_admits_half_open_probe(self):
        breaker, time = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        time.now += 9.9
        assert not breaker.allow()
        time.now += 0.2
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        breaker, time = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        time.now += 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        breaker, time = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        time.now += 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        time.now += 4.0
        assert not breaker.allow()
        time.now += 1.0
        assert breaker.allow()

    def test_transitions_recorded(self):
        breaker, time = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        time.now += 5.0
        breaker.allow()
        breaker.record_success()
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]
        assert breaker.transition_count == 3


class TestFaultPolicy:
    def test_fail_n_then_recover(self):
        policy = FaultPolicy.fail_n(2, sleep=lambda s: None)
        for _ in range(2):
            with pytest.raises(TransientSourceError):
                policy.before_call()
        policy.before_call()  # third call passes
        assert policy.calls == 3
        assert policy.failures_injected == 2

    def test_latency_spikes_on_schedule(self):
        time = FakeTime()
        policy = FaultPolicy.latency_spike(0.5, every=2, sleep=time.sleep)
        for _ in range(4):
            policy.before_call()
        assert time.sleeps == [0.5, 0.5]
        assert policy.spikes_injected == 2

    def test_flaky_is_seeded_and_reproducible(self):
        def run(seed):
            policy = FaultPolicy.flaky_percent(0.5, seed=seed, sleep=lambda s: None)
            results = []
            for _ in range(20):
                try:
                    policy.before_call()
                    results.append(True)
                except TransientSourceError:
                    results.append(False)
            return results

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_custom_error_propagates(self):
        policy = FaultPolicy(fail=1, error=ConnectionError("boom"), sleep=lambda s: None)
        with pytest.raises(ConnectionError):
            policy.before_call()

    def test_reset(self):
        policy = FaultPolicy.fail_n(1, sleep=lambda s: None)
        with pytest.raises(TransientSourceError):
            policy.before_call()
        policy.before_call()
        policy.reset()
        assert policy.calls == 0
        with pytest.raises(TransientSourceError):
            policy.before_call()

    @pytest.mark.parametrize(
        "spec,attr,value",
        [
            ("fail:2", "fail", 2),
            ("latency:0.05", "latency", 0.05),
            ("latency:0.05:3", "latency_every", 3),
            ("flaky:0.3", "flaky", 0.3),
            ("flaky:0.3:7", "seed", 7),
        ],
    )
    def test_parse(self, spec, attr, value):
        assert getattr(FaultPolicy.parse(spec), attr) == value

    @pytest.mark.parametrize(
        "spec", ["", "fail", "fail:x", "explode:1", "latency:1:2:3", "flaky:two"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPolicy.parse(spec)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(fail=-1)
        with pytest.raises(ValueError):
            FaultPolicy(flaky=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(latency_every=0)


class TestSourceAdapter:
    def make(self, source=None, **kwargs):
        time = FakeTime()
        kwargs.setdefault("retry", RetryPolicy(retries=2, backoff_base=0.05, jitter=0.0))
        adapter = SourceAdapter(
            source or StubSource(),
            clock=time.clock,
            sleep=time.sleep,
            **kwargs,
        )
        return adapter, time

    def test_ok_outcome(self):
        adapter, _ = self.make()
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows == [{"k": 1}]
        assert outcome.status == OK and outcome.ok
        assert outcome.attempts == 1 and outcome.retries == 0
        assert outcome.rows == 1
        assert outcome.breaker_state == CLOSED
        assert adapter.last_outcome is outcome

    def test_retries_through_transient_failures(self):
        time = FakeTime()
        adapter = SourceAdapter(
            StubSource(),
            retry=RetryPolicy(retries=2, backoff_base=0.05, jitter=0.0),
            fault_policy=FaultPolicy.fail_n(2, sleep=time.sleep),
            clock=time.clock,
            sleep=time.sleep,
        )
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows is not None
        assert outcome.status == RETRIED and outcome.ok
        assert outcome.attempts == 3 and outcome.retries == 2
        # Exponential backoff between the three attempts: base, then 2x.
        assert time.sleeps == pytest.approx([0.05, 0.1])

    def test_fails_when_retries_exhausted(self):
        adapter, _ = self.make(
            fault_policy=FaultPolicy.fail_n(100, sleep=lambda s: None),
        )
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows is None
        assert outcome.status == FAILED and not outcome.ok
        assert outcome.attempts == 3
        assert "TransientSourceError" in outcome.error

    def test_non_retryable_error_propagates(self):
        adapter, _ = self.make(StubSource(error=ValueError("bug")))
        with pytest.raises(ValueError):
            adapter.call({KEY: "r"}, parse_query("true"))

    def test_late_result_discarded_as_timed_out(self):
        time = FakeTime()
        adapter = SourceAdapter(
            StubSource(),
            timeout=0.3,
            retry=RetryPolicy(retries=2, jitter=0.0),
            fault_policy=FaultPolicy.latency_spike(0.5, sleep=time.sleep),
            clock=time.clock,
            sleep=time.sleep,
        )
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows is None
        assert outcome.status == TIMED_OUT

    def test_deadline_bounds_backoff(self):
        time = FakeTime()
        adapter = SourceAdapter(
            StubSource(),
            timeout=0.2,
            retry=RetryPolicy(retries=5, backoff_base=0.15, jitter=0.0),
            fault_policy=FaultPolicy.fail_n(100, sleep=time.sleep),
            clock=time.clock,
            sleep=time.sleep,
        )
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows is None
        assert outcome.status == TIMED_OUT
        assert time.now <= 0.2 + 1e-9

    def test_open_breaker_skips_without_calling_source(self):
        time = FakeTime()
        source = StubSource()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown=100.0), clock=time.clock
        )
        breaker.record_failure()
        adapter = SourceAdapter(
            source, breaker=breaker, clock=time.clock, sleep=time.sleep
        )
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows is None
        assert outcome.status == SKIPPED
        assert source.calls == 0

    def test_breaker_opens_mid_call_stops_retries(self):
        time = FakeTime()
        source = StubSource()
        adapter = SourceAdapter(
            source,
            retry=RetryPolicy(retries=5, backoff_base=0.0, jitter=0.0),
            breaker=CircuitBreaker(
                BreakerPolicy(failure_threshold=2, cooldown=100.0), clock=time.clock
            ),
            fault_policy=FaultPolicy.fail_n(100, sleep=time.sleep),
            clock=time.clock,
            sleep=time.sleep,
        )
        rows, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        assert rows is None
        assert outcome.status == FAILED
        assert outcome.attempts == 2  # third attempt refused by the open circuit
        assert outcome.breaker_state == OPEN
        assert (CLOSED, OPEN) in outcome.breaker_transitions

    def test_execute_raises_source_unavailable(self):
        adapter, _ = self.make(
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policy=FaultPolicy.fail_n(100, sleep=lambda s: None),
        )
        with pytest.raises(SourceUnavailableError) as excinfo:
            adapter.execute({KEY: "r"}, parse_query("true"))
        assert excinfo.value.outcomes[0].status == FAILED
        assert isinstance(excinfo.value, VocabMapError)

    def test_execute_returns_rows_on_success(self):
        adapter, _ = self.make()
        assert adapter.execute({KEY: "r"}, parse_query("true")) == [{"k": 1}]

    def test_ping_success_and_failure(self):
        adapter, _ = self.make()
        assert adapter.ping()["source"] == "stub"
        failing, _ = self.make(
            retry=RetryPolicy(retries=0, jitter=0.0),
            fault_policy=FaultPolicy.fail_n(100, sleep=lambda s: None),
        )
        with pytest.raises(SourceUnavailableError):
            failing.ping()

    def test_delegates_source_interface(self):
        amazon = make_amazon()
        adapter = SourceAdapter(amazon)
        assert adapter.name == amazon.name
        assert adapter.relations is amazon.relations
        assert adapter.capability is amazon.capability
        assert adapter.virtuals is amazon.virtuals
        assert adapter.grammar is amazon.grammar
        assert adapter.relation("catalog") is amazon.relation("catalog")
        direct = amazon.select({KEY: "catalog"}, AMAZON_QUERY)
        assert adapter.select({KEY: "catalog"}, AMAZON_QUERY) == direct
        assert adapter.select_rows("catalog", AMAZON_QUERY) == [
            row[KEY] for row in direct
        ]
        assert adapter.execute_rows("catalog", AMAZON_QUERY) == [
            row[KEY] for row in direct
        ]

    def test_record_outcome_counters(self):
        adapter, _ = self.make(
            fault_policy=FaultPolicy.fail_n(2, sleep=lambda s: None),
        )
        _, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        with obs.tracing("t") as tracer:
            record_outcome(outcome)
        assert tracer.counters["resilience.calls"] == 1
        assert tracer.counters["resilience.retries"] == 2
        assert "resilience.stub.latency_ms" in tracer.gauges

    def test_record_outcome_noop_without_tracer(self):
        adapter, _ = self.make()
        _, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        record_outcome(outcome)  # must not raise

    def test_outcome_to_dict_roundtrips_fields(self):
        adapter, _ = self.make()
        _, outcome = adapter.call({KEY: "r"}, parse_query("true"))
        data = outcome.to_dict()
        assert data["source"] == "stub" and data["status"] == OK
        assert data["ok"] is True and data["rows"] == 1


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(timeout=0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_workers=0)

    def test_workers_for(self):
        assert ResilienceConfig().workers_for(3) == 3
        assert ResilienceConfig().workers_for(50) == 8
        assert ResilienceConfig(max_workers=1).workers_for(5) == 1
        assert ResilienceConfig(max_workers=4).workers_for(2) == 2
        assert ResilienceConfig().workers_for(0) == 1

    def test_adapter_for_gives_each_source_its_own_breaker(self):
        config = ResilienceConfig()
        amazon = make_amazon()
        first, second = config.adapter_for(amazon), config.adapter_for(amazon)
        assert first.breaker is not second.breaker

    def test_wrap_sources_never_stacks_adapters(self):
        config = ResilienceConfig()
        amazon = make_amazon()
        wrapped = wrap_sources({"Amazon": amazon}, config)
        rewrapped = wrap_sources(wrapped, ResilienceConfig(timeout=1.0))
        assert rewrapped["Amazon"].source is amazon

    def test_fault_policies_assigned_by_name(self):
        fault = FaultPolicy.fail_n(1)
        config = ResilienceConfig(fault_policies={"Amazon": fault})
        amazon = make_amazon()
        assert config.adapter_for(amazon).fault_policy is fault
        other = StubSource()
        assert config.adapter_for(other).fault_policy is None


class TestSourcePing:
    def test_ping_counts_relation_rows(self):
        info = make_amazon().ping()
        assert info == {
            "source": "Amazon",
            "relations": {"catalog": 7},
            "rows": 7,
        }
