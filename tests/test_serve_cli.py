"""End-to-end tests for ``repro serve``: stdin JSON-lines and TCP."""

from __future__ import annotations

import io
import json
import socket
import threading

import pytest

from repro.cli import main

REQUEST = {"id": 1, "op": "translate", "query": '[ln = "Clancy"] and [fn = "Tom"]'}


def run_serve(monkeypatch, capsys, argv: list[str], lines: list[str]):
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    code = main(argv)
    captured = capsys.readouterr()
    return code, [json.loads(line) for line in captured.out.splitlines()], captured.err


class TestServeStdin:
    def test_one_shot_round_trip(self, monkeypatch, capsys):
        code, responses, _ = run_serve(
            monkeypatch, capsys, ["serve", "K_Amazon"], [json.dumps(REQUEST)]
        )
        assert code == 0
        assert len(responses) == 1
        response = responses[0]
        assert response["ok"] is True and response["id"] == 1
        assert "Clancy, Tom" in response["mappings"]["Amazon"]["text"]

    def test_pipelined_session_with_verbose_stats(self, monkeypatch, capsys):
        requests = [
            json.dumps({"id": i, "op": "translate", "query": REQUEST["query"]})
            for i in range(4)
        ] + [json.dumps({"id": "s", "op": "stats"}), "# trailing comment", ""]
        code, responses, err = run_serve(
            monkeypatch,
            capsys,
            ["serve", "K_Amazon", "--workers", "4", "-v"],
            requests,
        )
        assert code == 0
        assert sorted(str(r["id"]) for r in responses) == ["0", "1", "2", "3", "s"]
        assert all(r["ok"] for r in responses)
        assert "handled 5 request(s)" in err
        assert "service: " in err

    def test_bad_line_answers_instead_of_crashing(self, monkeypatch, capsys):
        code, responses, _ = run_serve(
            monkeypatch, capsys, ["serve", "K_Amazon"], ["{not json"]
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["type"] == "bad-json"

    def test_unknown_scenario_exits(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit, match="does not name a built-in"):
            main(["serve", "K_Bogus"])

    def test_bad_config_exits(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit, match="max_concurrency"):
            main(["serve", "K_Amazon", "--max-concurrency", "0"])


class TestServeTcpSmoke:
    def test_tcp_smoke_via_api(self):
        """The CLI's TCP path minus serve_forever: bind, serve, round-trip."""
        from repro.obs.stats import builtin_mediator
        from repro.serve import MediationService, serve_tcp

        service = MediationService(builtin_mediator({"K_Amazon"}))
        server = serve_tcp(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection((host, port), timeout=10.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                handle.write(json.dumps(REQUEST) + "\n")
                handle.flush()
                response = json.loads(handle.readline())
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
        assert response["ok"] is True and response["id"] == 1
        assert response["mappings"]["Amazon"]["exact"] is True

class TestServeClusterFlags:
    def test_processes_without_tcp_exits(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit, match="needs --tcp"):
            main(["serve", "K_Amazon", "--processes", "2"])

    def test_zero_processes_exits(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit, match="--processes must be"):
            main(["serve", "K_Amazon", "--tcp", "--processes", "0"])

    def test_negative_snapshot_interval_exits(self, monkeypatch, tmp_path):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit, match="interval"):
            main(
                [
                    "serve",
                    "K_Amazon",
                    "--snapshot-dir",
                    str(tmp_path),
                    "--snapshot-interval",
                    "-1",
                ]
            )

    def test_bad_fault_spec_exits_before_forking(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit, match="bad --fault"):
            main(
                [
                    "serve",
                    "K_Amazon",
                    "--tcp",
                    "--processes",
                    "2",
                    "--fault",
                    "nonsense",
                ]
            )


class TestServeSnapshotStdin:
    def test_snapshot_dir_persists_and_restores(self, monkeypatch, capsys, tmp_path):
        line = json.dumps(REQUEST)
        code, responses, _ = run_serve(
            monkeypatch,
            capsys,
            ["serve", "K_Amazon", "--snapshot-dir", str(tmp_path)],
            [line],
        )
        assert code == 0 and responses[0]["ok"]
        snapshot_file = tmp_path / "shard-0.json"
        assert snapshot_file.exists()
        payload = json.loads(snapshot_file.read_text(encoding="utf-8"))
        assert payload["kind"] == "repro.serve.cache-snapshot"
        assert sum(
            len(s["entries"]) for s in payload["specs"].values()
        ) > 0

        # Second run restores the entry: the translate is a cache hit.
        code, responses, err = run_serve(
            monkeypatch,
            capsys,
            ["serve", "K_Amazon", "--snapshot-dir", str(tmp_path), "-v"],
            [line, json.dumps({"id": 2, "op": "stats"})],
        )
        assert code == 0
        stats = next(r for r in responses if r["id"] == 2)["stats"]
        assert stats["cache"]["hits"] >= 1
