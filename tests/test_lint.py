"""Tests for the vocablint static analyzer (repro.analysis)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    CATALOG,
    Diagnostic,
    LintReport,
    Severity,
    SubsumptionVerdict,
    capability_from_dict,
    catalog_entry,
    classify_subsumption,
    harvest_literals,
    lint_many,
    lint_specification,
    sample_rule,
    vocabulary_from_dict,
)
from repro.core.ast import C, Constraint, attr, conj, disj, neg
from repro.core.matching import Matching
from repro.rules import K_AMAZON, builtin_specifications
from repro.rules.declarative import spec_from_dict
from repro.rules.library_realty import K_REALTY

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name):
    return json.loads((FIXTURES / name).read_text())


def lint_fixture(name, vocab=None, capability=None):
    spec = spec_from_dict(load_fixture(name))
    vocabulary = vocabulary_from_dict(load_fixture(vocab)) if vocab else None
    cap = capability_from_dict(load_fixture(capability)) if capability else None
    return lint_specification(spec, vocabulary=vocabulary, capability=cap)


class TestCatalog:
    def test_twelve_codes(self):
        assert sorted(CATALOG) == [f"VM{n:03d}" for n in range(1, 13)]

    def test_entries_complete(self):
        for code, info in CATALOG.items():
            assert info.code == code
            assert info.title and info.summary
            assert isinstance(info.severity, Severity)

    def test_catalog_entry_unknown(self):
        with pytest.raises(KeyError):
            catalog_entry("VM999")


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_lowercase(self):
        assert str(Severity.ERROR) == "error"

    def test_parse(self):
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestDiagnostic:
    def _diag(self, **kw):
        base = dict(
            code="VM003",
            severity=Severity.ERROR,
            spec="K_demo",
            message="boom",
            rule="R1",
            field="emit",
        )
        base.update(kw)
        return Diagnostic(**base)

    def test_location(self):
        assert self._diag().location == "K_demo:R1[emit]"
        assert self._diag(rule=None, field="").location == "K_demo"

    def test_str_contains_code_and_severity(self):
        text = str(self._diag())
        assert text.startswith("VM003 error")
        assert "K_demo:R1[emit]: boom" in text

    def test_to_dict(self):
        data = self._diag(details=(("hint", "x"),)).to_dict()
        assert data["code"] == "VM003"
        assert data["severity"] == "error"
        assert data["title"] == CATALOG["VM003"].title
        assert data["details"] == {"hint": "x"}


class TestLintReport:
    def _report(self):
        mk = lambda code, sev, msg: Diagnostic(
            code=code, severity=sev, spec="K", message=msg
        )
        return LintReport(
            spec="K",
            diagnostics=(
                mk("VM010", Severity.INFO, "c"),
                mk("VM003", Severity.ERROR, "a"),
                mk("VM005", Severity.WARNING, "b"),
            ),
            stats=(),
        )

    def test_sorted_most_severe_first(self):
        report = self._report()
        assert [d.code for d in report.diagnostics] == ["VM003", "VM005", "VM010"]

    def test_errors_warnings_max(self):
        report = self._report()
        assert [d.code for d in report.errors] == ["VM003"]
        assert [d.code for d in report.warnings] == ["VM005"]
        assert report.max_severity is Severity.ERROR

    def test_filter(self):
        report = self._report()
        warm = report.filter(severity=Severity.WARNING)
        assert [d.code for d in warm.diagnostics] == ["VM003", "VM005"]
        only = report.filter(codes=frozenset({"VM010"}))
        assert [d.code for d in only.diagnostics] == ["VM010"]

    def test_counts_and_render(self):
        report = self._report()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        text = report.render()
        assert "VM003" in text and "3 diagnostics" in text
        empty = LintReport(spec="K", diagnostics=(), stats=())
        assert "clean" in empty.render()
        assert empty.max_severity is None


class TestClassifySubsumption:
    def _matching(self, emission, constraints=(C("t", "=", 1),)):
        return Matching(
            constraints=frozenset(constraints), rule_name="R", emission=emission
        )

    def test_sound_identity(self):
        group = C("t", "=", 1)
        verdict = classify_subsumption(self._matching(group))
        assert verdict is SubsumptionVerdict.SOUND

    def test_sound_weakening(self):
        emission = disj([C("t", "=", 1), C("u", "=", 2)])
        assert (
            classify_subsumption(self._matching(emission))
            is SubsumptionVerdict.SOUND
        )

    def test_confirmed_negation(self):
        emission = neg(C("t", "=", 1))
        assert (
            classify_subsumption(self._matching(emission))
            is SubsumptionVerdict.CONFIRMED
        )

    def test_suspected_extra_atom(self):
        emission = conj([C("t", "=", 1), C("u", "=", 2)])
        assert (
            classify_subsumption(self._matching(emission))
            is SubsumptionVerdict.SUSPECTED
        )

    def test_unverifiable_disjoint_vocabulary(self):
        emission = C("author", "=", "x")
        assert (
            classify_subsumption(self._matching(emission))
            is SubsumptionVerdict.UNVERIFIABLE
        )

    def test_oracle_overrides(self):
        emission = C("author", "=", "x")
        says_no = lambda broad, narrow: False
        says_yes = lambda broad, narrow: True
        assert (
            classify_subsumption(self._matching(emission), says_no)
            is SubsumptionVerdict.CONFIRMED
        )
        assert (
            classify_subsumption(self._matching(emission), says_yes)
            is SubsumptionVerdict.SOUND
        )


class TestSampling:
    def test_harvest_literals_amazon(self):
        literals = harvest_literals(K_AMAZON)
        assert "ln" in literals.attrs
        assert "=" in literals.ops

    def test_every_builtin_rule_fires(self):
        # The synthesizer must find at least one matching per builtin rule;
        # a false VM005 on the reference library would drown real findings.
        for spec in list(builtin_specifications().values()) + [K_REALTY]:
            literals = harvest_literals(spec)
            for rule in spec.rules:
                samples = sample_rule(rule, literals)
                assert samples.fired, f"{spec.name}:{rule.name} never fired"

    def test_matchings_are_deduplicated(self):
        literals = harvest_literals(K_AMAZON)
        samples = sample_rule(K_AMAZON.get_rule("R3"), literals)
        keys = [(m.constraints, m.emission) for m in samples.matchings]
        assert len(keys) == len(set(keys))


class TestBuiltinSelfCheck:
    def test_builtins_have_no_errors_or_warnings(self):
        reports = lint_many(builtin_specifications())
        reports["K_realty"] = lint_specification(K_REALTY)
        for name, report in reports.items():
            assert report.errors == (), f"{name}: {report.render()}"
            assert report.warnings == (), f"{name}: {report.render()}"

    def test_only_cross_matching_infos_remain(self):
        report = lint_specification(K_AMAZON)
        assert {d.code for d in report.diagnostics} <= {"VM010"}
        pairs = {dict(d.details)["attributes"] for d in report.diagnostics}
        assert "fn, ln" in pairs  # Example 8's joint rule

    def test_stats_counters_present(self):
        report = lint_specification(K_AMAZON)
        stats = dict(report.stats)
        assert stats["lint.rules"] == len(K_AMAZON.rules)
        assert stats["lint.sampled_matchings"] > 0


class TestFixtures:
    """Each VM0xx code must fire on its known-bad fixture."""

    def test_vm003_vm004_unsound(self):
        report = lint_fixture("vm_unsound.json")
        fired = {(d.code, d.rule) for d in report.diagnostics}
        assert ("VM003", "Rneg") in fired
        assert ("VM004", "Rextra") in fired
        assert report.max_severity is Severity.ERROR

    def test_vm005_vm011_dead(self):
        report = lint_fixture("vm_dead.json")
        fired = {(d.code, d.rule) for d in report.diagnostics}
        assert ("VM005", "Rdead") in fired
        assert ("VM011", "Rcrash") in fired

    def test_vm006_vm007_vm008_vm010_overlap(self):
        report = lint_fixture("vm_overlap.json")
        fired = {(d.code, d.rule) for d in report.diagnostics}
        assert ("VM007", "Ra") in fired  # Ra/Rb duplicate pair
        assert ("VM008", "Ra") in fired  # Ra vs Rd contradiction
        assert ("VM006", "Rc") in fired  # weaker any-emission shadowed
        assert ("VM010", "Rj") in fired  # joint two-attribute head

    def test_vm001_vm002_vm009_vocab(self):
        report = lint_fixture("vm_vocab_spec.json", vocab="vm_vocab.json")
        fired = {(d.code, d.rule) for d in report.diagnostics}
        assert ("VM001", "Rt") in fired
        assert ("VM002", "Rq") in fired
        assert ("VM009", None) in fired
        orphaned = [
            d for d in report.diagnostics
            if d.code == "VM009" and "orphan" in d.message
        ]
        assert orphaned

    def test_vm012_inexpressible(self):
        report = lint_fixture(
            "vm_inexpressible.json", capability="vm_capability.json"
        )
        assert {(d.code, d.rule) for d in report.diagnostics} >= {
            ("VM012", "Rp")
        }

    def test_dead_rule_warns_with_vocabulary(self):
        # Without a vocabulary VM005 is informational (sampling may just be
        # blind); with one declared, an unreachable rule is a WARNING.
        spec = spec_from_dict(load_fixture("vm_dead.json"))
        quiet = lint_specification(spec)
        loud = lint_specification(
            spec,
            vocabulary=vocabulary_from_dict(
                {"attributes": [{"name": "t", "operators": ["="]}]}
            ),
        )
        severity = {
            d.rule: d.severity for d in quiet.diagnostics if d.code == "VM005"
        }
        assert severity["Rdead"] is Severity.INFO
        severity = {
            d.rule: d.severity for d in loud.diagnostics if d.code == "VM005"
        }
        assert severity["Rdead"] is Severity.WARNING


class TestLoaders:
    def test_vocabulary_from_dict(self):
        vocabulary = vocabulary_from_dict(
            {
                "attributes": [
                    {"name": "price", "operators": ["<="], "samples": {"<=": 9}}
                ],
                "groups": [["a", "b"]],
            }
        )
        assert vocabulary.attribute("price").samples["<="] == 9
        assert vocabulary.groups == (("a", "b"),)

    def test_capability_from_dict(self):
        cap = capability_from_dict(
            {"selections": [["cents", "<="]], "joins": [["a", "b", "="]]}
        )
        assert cap.supports(C("cents", "<=", 5))
        assert not cap.supports(C("cents", "=", 5))
        assert cap.supports(Constraint(attr("a"), "=", attr("b")))
