"""Unit tests for the conversion functions (repro.conversions)."""

import pytest

from repro.conversions import (
    category_to_subject,
    cm_to_inches,
    dept_code,
    inches_to_cm,
    ln_fn_to_name,
    month_period,
    name_last,
    name_to_ln_fn,
    year_period,
)
from repro.conversions.units import cents_to_usd, usd_to_cents
from repro.core.values import Month, Year


class TestNames:
    def test_combine(self):
        assert ln_fn_to_name("Clancy", "Tom") == "Clancy, Tom"

    def test_combine_without_first(self):
        assert ln_fn_to_name("Clancy", None) == "Clancy"
        assert ln_fn_to_name("Clancy", "  ") == "Clancy"

    def test_combine_strips(self):
        assert ln_fn_to_name(" Clancy ", " Tom ") == "Clancy, Tom"

    def test_empty_last_rejected(self):
        with pytest.raises(ValueError):
            ln_fn_to_name("  ", "Tom")

    def test_split(self):
        assert name_to_ln_fn("Clancy, Tom") == ("Clancy", "Tom")
        assert name_to_ln_fn("Clancy") == ("Clancy", None)
        assert name_to_ln_fn("Clancy, ") == ("Clancy", None)

    def test_round_trip(self):
        for ln, fn in (("Clancy", "Tom"), ("Smith", None)):
            assert name_to_ln_fn(ln_fn_to_name(ln, fn)) == (ln, fn)

    def test_name_last(self):
        assert name_last("Clancy, Joe Tom") == "Clancy"


class TestDates:
    def test_month_period(self):
        assert month_period(1997, 5) == Month(1997, 5)

    def test_year_period(self):
        assert year_period(1997) == Year(1997)

    def test_type_checking(self):
        with pytest.raises(TypeError):
            month_period("1997", 5)
        with pytest.raises(TypeError):
            year_period("1997")


class TestCodes:
    def test_dept_code(self):
        assert dept_code("cs") == 230
        assert dept_code(" CS ") == 230

    def test_unknown_dept(self):
        with pytest.raises(KeyError):
            dept_code("astrology")

    def test_category(self):
        assert category_to_subject("D.3") == "programming"
        with pytest.raises(KeyError):
            category_to_subject("Z.9")


class TestUnits:
    def test_inches_cm_round_trip(self):
        assert inches_to_cm(3) == 7.62
        assert cm_to_inches(inches_to_cm(5)) == pytest.approx(5)

    def test_currency(self):
        assert usd_to_cents(19.99) == 1999
        assert cents_to_usd(1999) == 19.99
