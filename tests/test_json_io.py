"""Tests for the JSON wire format (repro.core.json_io)."""

import pytest

from repro.core.ast import C, Constraint, attr, conj, disj, neg
from repro.core.errors import ParseError
from repro.core.json_io import dumps, loads, query_from_json, query_to_json
from repro.core.parser import parse_query
from repro.core.values import Date, Month, Point, Range, Year
from repro.text import MATCH_ALL, parse_pattern
from repro.workloads.paper_queries import (
    example3_query,
    example8_query_ranges,
    figure2_q1,
    figure2_q2,
    qbook,
)


class TestRoundTrip:
    PAPER_QUERIES = [
        figure2_q1,
        figure2_q2,
        qbook,
        example3_query,
        example8_query_ranges,
    ]

    @pytest.mark.parametrize("factory", PAPER_QUERIES)
    def test_paper_queries(self, factory):
        query = factory()
        assert loads(dumps(query)) == query

    def test_constants(self):
        assert loads(dumps(parse_query("true"))) == parse_query("true")
        assert loads(dumps(parse_query("false"))) == parse_query("false")

    def test_negation(self):
        query = neg(conj([C("a", "=", 1), C("b", "=", 2)]))
        assert loads(dumps(query)) == query

    def test_joins_with_indexes(self):
        query = Constraint(attr("fac[1].ln"), "=", attr("fac[2].ln"))
        assert loads(dumps(query)) == query

    @pytest.mark.parametrize(
        "value",
        [
            Date(1997, 5, 3),
            Year(1997),
            Month(1997, 5),
            Range(10, 30),
            Point(10, 20),
            ("cs", "ee"),
            3.25,
            None,
            True,
        ],
    )
    def test_value_types(self, value):
        query = C("x", "in" if isinstance(value, tuple) else "=", value)
        assert loads(dumps(query)) == query

    @pytest.mark.parametrize(
        "raw",
        [
            "java",
            '"data mining"',
            "java (near/3) jdk",
            "a (and) b (or) c",
        ],
    )
    def test_text_patterns(self, raw):
        query = C("ti", "contains", parse_pattern(raw))
        assert loads(dumps(query)) == query

    def test_match_all(self):
        query = C("ti", "contains", MATCH_ALL)
        assert loads(dumps(query)) == query


class TestEncoding:
    def test_tags_present(self):
        data = query_to_json(conj([C("a", "=", 1), disj([C("b", "=", 2), C("c", "=", 3)])]))
        assert data["$"] == "and"
        assert data["children"][1]["$"] == "or"

    def test_plain_scalars_stay_plain(self):
        data = query_to_json(C("a", "=", "text"))
        assert data["rhs"] == "text"

    def test_index_omitted_when_none(self):
        data = query_to_json(C("fac.ln", "=", "x"))
        assert "index" not in data["lhs"]

    def test_unserializable_value(self):
        with pytest.raises(TypeError):
            query_to_json(C("a", "=", frozenset({1})))


class TestDecodingErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            "not json {{",
            '{"no": "tag"}',
            '{"$": "mystery"}',
            '{"$": "c", "lhs": {"$": "word", "text": "x"}, "op": "=", "rhs": 1}',
        ],
    )
    def test_rejects(self, payload):
        with pytest.raises(ParseError):
            loads(payload)

    def test_bad_value_tag(self):
        with pytest.raises(ParseError):
            query_from_json(
                {"$": "c", "lhs": {"$": "attr", "path": ["a"]}, "op": "=",
                 "rhs": {"$": "alien"}}
            )
