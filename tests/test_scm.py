"""Tests for Algorithm SCM (repro.core.scm) — Figure 4, Example 4."""

import pytest

from repro.core.ast import FALSE, TRUE, C, conj, disj
from repro.core.errors import TranslationError
from repro.core.matching import Matching
from repro.core.printer import to_text
from repro.core.scm import scm, scm_translate, suppress_submatchings
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import figure2_q1


def _matching(*constraints, rule="R", emission=None, exact=False):
    return Matching(
        frozenset(constraints),
        rule,
        emission or C("t", "=", 1),
        exact=exact,
    )


class TestSuppression:
    def test_proper_subset_removed(self):
        a, b = C("a", "=", 1), C("b", "=", 1)
        small = _matching(a, rule="R7")
        big = _matching(a, b, rule="R6")
        kept = suppress_submatchings([small, big])
        assert kept == [big]

    def test_equal_sets_both_kept(self):
        a = C("a", "=", 1)
        m1 = _matching(a, rule="Rx", emission=C("t1", "=", 1))
        m2 = _matching(a, rule="Ry", emission=C("t2", "=", 1))
        assert len(suppress_submatchings([m1, m2])) == 2

    def test_disjoint_sets_kept(self):
        m1 = _matching(C("a", "=", 1))
        m2 = _matching(C("b", "=", 1))
        assert len(suppress_submatchings([m1, m2])) == 2

    def test_chain_of_subsets(self):
        a, b, c = (C(x, "=", 1) for x in "abc")
        kept = suppress_submatchings(
            [_matching(a), _matching(a, b), _matching(a, b, c)]
        )
        assert [len(m.constraints) for m in kept] == [3]


class TestExample4:
    """The paper's step-by-step SCM trace on Q̂1."""

    def test_step1_matchings(self):
        result = scm_translate(figure2_q1(), K_AMAZON)
        assert sorted(m.rule_name for m in result.all_matchings) == [
            "R3", "R4", "R6", "R7", "R8",
        ]

    def test_step2_submatching_suppressed(self):
        result = scm_translate(figure2_q1(), K_AMAZON)
        kept = sorted(m.rule_name for m in result.kept_matchings)
        assert kept == ["R3", "R4", "R6", "R8"]  # R7 ⊂ R6 removed

    def test_step3_output(self):
        result = scm_translate(figure2_q1(), K_AMAZON)
        assert to_text(result.mapping) == (
            '[author = "Smith"] and [ti-word contains java (and) jdk] and '
            "[pdate during May/97] and "
            "([ti-word contains www] or [subject-word contains www])"
        )


class TestScmBasics:
    def test_single_constraint(self):
        mapping = scm(C("ln", "=", "Clancy"), K_AMAZON)
        assert mapping == C("author", "=", "Clancy")

    def test_uncovered_constraint_maps_to_true(self):
        mapping = scm(C("fn", "=", "Tom"), K_AMAZON)
        assert mapping is TRUE

    def test_true_false_pass_through(self):
        assert scm(TRUE, K_AMAZON) is TRUE
        assert scm(FALSE, K_AMAZON) is FALSE

    def test_frozenset_input(self):
        constraints = frozenset([C("ln", "=", "Clancy"), C("fn", "=", "Tom")])
        mapping = scm(constraints, K_AMAZON)
        assert mapping == C("author", "=", "Clancy, Tom")

    def test_complex_query_rejected(self):
        q = disj([C("a", "=", 1), C("b", "=", 2)])
        with pytest.raises(TranslationError):
            scm(q, K_AMAZON)

    def test_nested_and_rejected(self):
        q = conj([disj([C("a", "=", 1), C("b", "=", 2)]), C("c", "=", 3)])
        with pytest.raises(TranslationError):
            scm(q, K_AMAZON)


class TestExactness:
    def test_exact_when_exact_matchings_cover(self):
        q = conj([C("ln", "=", "Clancy"), C("fn", "=", "Tom")])
        assert scm_translate(q, K_AMAZON).exact  # R2 is exact and covers both

    def test_inexact_when_constraint_uncovered(self):
        assert not scm_translate(C("fn", "=", "Tom"), K_AMAZON).exact

    def test_inexact_when_only_relaxed_rule_covers(self):
        from repro.core.parser import parse_query

        q = parse_query("[ti contains java (near) jdk]")
        assert not scm_translate(q, K_AMAZON).exact

    def test_constants_are_exact(self):
        assert scm_translate(TRUE, K_AMAZON).exact
