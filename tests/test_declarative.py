"""Tests for declarative (data-driven) specifications (rules/declarative)."""

import pytest

from repro.core.ast import C, Constraint, TRUE, attr
from repro.core.errors import SpecificationError
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.scm import scm
from repro.core.tdqm import tdqm
from repro.core.values import Month
from repro.rules import K_AMAZON
from repro.rules.declarative import rule_from_dict, spec_from_dict
from repro.workloads.paper_queries import example2_query, figure2_q1

#: A declarative re-statement of the K_Amazon rules that Figure 2's Q̂1
#: exercises (R3, R4, R6, R7, R8 — plus R2 for Example 2).
DECLARATIVE_AMAZON = {
    "name": "K_Amazon_decl",
    "target": "Amazon",
    "rules": [
        {
            "name": "R2",
            "match": [
                {"attr": "ln", "op": "=", "bind": "L"},
                {"attr": "fn", "op": "=", "bind": "F"},
            ],
            "where": [{"cond": "value_is", "vars": ["L", "F"]}],
            "let": [{"var": "N", "fn": "ln_fn_to_name", "args": ["$L", "$F"]}],
            "emit": {"attr": "author", "op": "=", "value": "$N"},
            "exact": True,
        },
        {
            "name": "R3",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
        },
        {
            "name": "R4",
            "match": [{"attr": "ti", "op": "contains", "bind": "P1"}],
            "let": [
                {
                    "var": "RW",
                    "rewrite": "$P1",
                    "capability": {"supports_near": False, "supports_phrase": False},
                }
            ],
            "emit": {"attr": "ti-word", "op": "contains", "value": "$RW"},
            "exact": {"from": "RW"},
        },
        {
            "name": "R6",
            "match": [
                {"attr": "pyear", "op": "=", "bind": "Y"},
                {"attr": "pmonth", "op": "=", "bind": "M"},
            ],
            "where": [{"cond": "value_is", "vars": ["Y", "M"]}],
            "let": [{"var": "D", "fn": "month_period", "args": ["$Y", "$M"]}],
            "emit": {"attr": "pdate", "op": "during", "value": "$D"},
            "exact": True,
        },
        {
            "name": "R7",
            "match": [{"attr": "pyear", "op": "=", "bind": "Y"}],
            "where": [{"cond": "value_is", "vars": ["Y"]}],
            "let": [{"var": "D", "fn": "year_period", "args": ["$Y"]}],
            "emit": {"attr": "pdate", "op": "during", "value": "$D"},
            "exact": True,
        },
        {
            "name": "R8",
            "match": [{"attr": "kwd", "op": "contains", "bind": "P1"}],
            "let": [
                {
                    "var": "RW",
                    "rewrite": "$P1",
                    "capability": {"supports_near": False, "supports_phrase": False},
                }
            ],
            "emit": {
                "any": [
                    {"attr": "ti-word", "op": "contains", "value": "$RW"},
                    {"attr": "subject-word", "op": "contains", "value": "$RW"},
                ]
            },
            "exact": {"from": "RW"},
        },
    ],
}


class TestAgainstDslSpec:
    def test_figure2_q1_matches_dsl_output(self):
        spec = spec_from_dict(DECLARATIVE_AMAZON)
        assert to_text(scm(figure2_q1(), spec)) == to_text(scm(figure2_q1(), K_AMAZON))

    def test_example2_minimal_mapping(self):
        spec = spec_from_dict(DECLARATIVE_AMAZON)
        assert to_text(tdqm(example2_query(), spec)) == (
            '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
        )

    def test_month_value_constructed(self):
        spec = spec_from_dict(DECLARATIVE_AMAZON)
        q = parse_query("[pyear = 1997] and [pmonth = 5]")
        assert scm(q, spec) == C("pdate", "during", Month(1997, 5))


class TestFeatures:
    def test_table_lookup_with_veto(self):
        data = {
            "name": "Rd",
            "match": [{"attr": "dept", "op": "=", "bind": "D"}],
            "let": [{"var": "C", "table": {"cs": 230}, "key": "$D"}],
            "emit": {"attr": "dept_code", "op": "=", "value": "$C"},
        }
        r = rule_from_dict(data)
        from repro.core.matching import match_rule

        assert match_rule(r, [C("dept", "=", "cs")])[0].emission == C(
            "dept_code", "=", 230
        )
        assert match_rule(r, [C("dept", "=", "astrology")]) == []

    def test_attr_variable_and_template(self):
        data = {
            "name": "Rv",
            "match": [{"attr": "?A", "view": "fac", "index": "?i", "op": "=", "bind": "N"}],
            "where": [
                {"cond": "attr_in", "var": "A", "allowed": ["ln", "fn"]},
                {"cond": "value_is", "vars": ["N"]},
            ],
            "emit": {"attr": "fac.prof.$A", "index": "$i", "op": "=", "value": "$N"},
            "exact": True,
        }
        r = rule_from_dict(data)
        from repro.core.matching import match_rule

        found = match_rule(r, [Constraint(attr("fac[2].ln"), "=", "Ullman")])
        assert found[0].emission == Constraint(attr("fac[2].prof.ln"), "=", "Ullman")

    def test_join_pattern_and_emit(self):
        data = {
            "name": "Rj",
            "match": [
                {"attr": "ln", "view": "?V1", "op": "=",
                 "rhs": {"attr": "ln", "view": "?V2"}},
            ],
            "emit": {
                "attr": "x",  # placeholder; joins built via attr_rhs pair
                "op": "=",
                "attr_rhs": {"attr": "y"},
            },
        }
        r = rule_from_dict(data)
        from repro.core.matching import match_rule

        found = match_rule(
            r, [Constraint(attr("fac.ln"), "=", attr("pub.ln"))]
        )
        assert found[0].emission == Constraint(attr("x"), "=", attr("y"))

    def test_emit_true(self):
        data = {
            "name": "Rt",
            "match": [{"attr": "noise", "op": "=", "bind": "N"}],
            "emit": "true",
        }
        r = rule_from_dict(data)
        from repro.core.matching import match_rule

        assert match_rule(r, [C("noise", "=", 1)])[0].emission is TRUE

    def test_dollar_escape(self):
        data = {
            "name": "Re",
            "match": [{"attr": "a", "op": "=", "bind": "X"}],
            "emit": {"attr": "t", "op": "=", "value": "$$literal"},
        }
        r = rule_from_dict(data)
        from repro.core.matching import match_rule

        assert match_rule(r, [C("a", "=", 1)])[0].emission.rhs == "$literal"

    def test_custom_function_registry(self):
        data = {
            "name": "Rc",
            "match": [{"attr": "a", "op": "=", "bind": "X"}],
            "let": [{"var": "Y", "fn": "double", "args": ["$X"]}],
            "emit": {"attr": "t", "op": "=", "value": "$Y"},
        }
        r = rule_from_dict(data, functions={"double": lambda x: x * 2})
        from repro.core.matching import match_rule

        assert match_rule(r, [C("a", "=", 3)])[0].emission.rhs == 6


class TestValidation:
    @pytest.mark.parametrize(
        "broken",
        [
            {"match": [{"attr": "a", "op": "=", "bind": "X"}], "emit": "true"},
            {"name": "R", "emit": "true"},
            {"name": "R", "match": [{"attr": "a", "op": "=", "bind": "X"}]},
            {"name": "R", "match": [{"op": "="}], "emit": "true"},
            {"name": "R", "match": [{"attr": "a", "op": "="}], "emit": "true"},
            {"name": "R", "match": [{"attr": "a", "op": "=", "bind": "X"}],
             "where": [{"cond": "mystery"}], "emit": "true"},
            {"name": "R", "match": [{"attr": "a", "op": "=", "bind": "X"}],
             "let": [{"var": "Y", "fn": "no_such_fn"}], "emit": "true"},
            {"name": "R", "match": [{"attr": "a", "op": "=", "bind": "X"}],
             "let": [{"fn": "str"}], "emit": "true"},
        ],
    )
    def test_broken_rules_rejected(self, broken):
        with pytest.raises(SpecificationError):
            rule_from_dict(broken)

    def test_spec_needs_header_fields(self):
        with pytest.raises(SpecificationError):
            spec_from_dict({"name": "K", "rules": []})

    def test_round_trip_through_json(self):
        import json

        spec = spec_from_dict(json.loads(json.dumps(DECLARATIVE_AMAZON)))
        assert len(spec) == 6
