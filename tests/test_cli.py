"""Tests for the command-line interface (repro.cli) and explain facility."""

import pytest

from repro.cli import main
from repro.core.explain import explain_translation
from repro.core.parser import parse_query
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import example2_query, qbook


class TestExplain:
    def test_contains_all_sections(self):
        text = explain_translation(example2_query(), K_AMAZON)
        assert "potential matchings" in text
        assert "traversal:" in text
        assert "case 2" in text and "case 1" in text and "case 3" in text
        assert "partition: {C1, C2}" in text
        assert 'mapping   : [author = "Clancy, Tom"] or [author = "Klancy, Tom"]' in text

    def test_shows_suppressed_matchings(self):
        text = explain_translation(example2_query(), K_AMAZON)
        assert "[drop] R3" in text
        assert "[keep] R2" in text

    def test_qbook_partition_narrated(self):
        text = explain_translation(qbook(), K_AMAZON)
        assert "partition: {C1}, {C2, C3}" in text
        assert "rewriting block {C2, C3}" in text

    def test_no_matchings_case(self):
        text = explain_translation(parse_query("[zzz = 1]"), K_AMAZON)
        assert "(none — every constraint maps to True)" in text


class TestCli:
    def test_translate(self, capsys):
        code = main(["translate", "K_Amazon", '[ln = "Clancy"] and [fn = "Tom"]'])
        assert code == 0
        assert capsys.readouterr().out.strip() == '[author = "Clancy, Tom"]'

    def test_translate_verbose(self, capsys):
        code = main(["translate", "-v", "K_Amazon", '[ln = "Clancy"]'])
        assert code == 0
        assert "exact: True" in capsys.readouterr().err

    def test_explain(self, capsys):
        code = main(["explain", "K_Amazon", '[pyear = 1997] and [pmonth = 5]'])
        assert code == 0
        assert "pdate during May/97" in capsys.readouterr().out

    def test_filter(self, capsys):
        code = main(
            ["filter", "K1,K2", "[fac.bib contains data (near) mining] and [fac.dept = cs]"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "S(K2) = [fac.prof.dept = 230]" in out
        assert "F = [fac.bib contains data (near) mining]" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        for name in ("K_Amazon", "K_Clbooks", "K1", "K2", "K_map"):
            assert name in out

    def test_specs_verbose_lists_rules(self, capsys):
        assert main(["specs", "-v"]) == 0
        assert "R6" in capsys.readouterr().out

    def test_audit_clean(self, capsys):
        assert main(["audit", "K_Amazon", '[ln = "x"]']) == 0
        assert "coverage: 100%" in capsys.readouterr().out

    def test_audit_uncovered_sets_exit_code(self, capsys):
        assert main(["audit", "K_Amazon", "[shoe-size = 9]"]) == 1
        assert "UNCOVERED" in capsys.readouterr().out

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            main(["translate", "K_Nowhere", "[a = 1]"])

    def test_parse_error_is_reported(self, capsys):
        code = main(["translate", "K_Amazon", "[broken"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSpecFile:
    def test_translate_with_declarative_spec(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "K_file", "target": "demo",
            "rules": [{
                "name": "R1",
                "match": [{"attr": "ln", "op": "=", "bind": "L"}],
                "where": [{"cond": "value_is", "vars": ["L"]}],
                "emit": {"attr": "author", "op": "=", "value": "$L"},
                "exact": True,
            }],
        }))
        code = main(["translate", "K_file", '[ln = "Clancy"]', "-f", str(spec_path)])
        assert code == 0
        assert capsys.readouterr().out.strip() == '[author = "Clancy"]'

    def test_wrong_name_in_spec_file(self, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "K_file", "target": "demo",
            "rules": [{
                "name": "R1",
                "match": [{"attr": "ln", "op": "=", "bind": "L"}],
                "emit": "true",
            }],
        }))
        with pytest.raises(SystemExit):
            main(["translate", "K_other", "[ln = \"x\"]", "-f", str(spec_path)])

    def test_shipped_example_spec(self, capsys):
        import pathlib

        spec = pathlib.Path(__file__).parent.parent / "examples/specs/dates_spec.json"
        code = main([
            "translate", "K_dates", "[pyear = 1997] and [pmonth = 5]",
            "-f", str(spec),
        ])
        assert code == 0
        assert capsys.readouterr().out.strip() == "[pdate during May/97]"


class TestSourcesCli:
    def test_all_builtin_sources_healthy(self, capsys):
        code = main(["sources"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("Amazon", "Clbooks", "T1", "T2", "G", "listings"):
            assert name in out
        assert "DOWN" not in out

    def test_injected_fault_marks_source_down(self, capsys):
        code = main(
            ["sources", "--fault", "Amazon=fail:9", "--retries", "1", "--backoff", "0"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DOWN" in out and "Amazon" in out

    def test_json_health_report(self, capsys):
        import json

        code = main(["sources", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["source"]: entry for entry in payload["sources"]}
        assert by_name["Amazon"]["healthy"] is True
        assert by_name["Amazon"]["rows"] == 7
        assert by_name["Amazon"]["outcome"]["status"] == "ok"

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["sources", "--fault", "Amazon"])
        with pytest.raises(SystemExit):
            main(["sources", "--fault", "Amazon=explode:1"])


class TestStatsResilienceCli:
    QUERY = '[ln = "Clancy"] and [fn = "Tom"]'

    def test_stats_reports_retry_counters(self, capsys):
        code = main(
            [
                "stats", "K_Amazon", self.QUERY,
                "--fault", "Amazon=fail:2", "--retries", "2", "--backoff", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "complete = True" in out
        assert "retried" in out
        assert "resilience.retries" in out and "resilience.calls" in out

    def test_stats_strict_fails_with_exit_2(self, capsys):
        code = main(
            [
                "stats", "K_Amazon", self.QUERY,
                "--fault", "Amazon=fail:9", "--retries", "0", "--strict",
            ]
        )
        assert code == 2
        assert "unavailable" in capsys.readouterr().err

    def test_stats_json_includes_sources_section(self, capsys):
        import json

        code = main(
            [
                "stats", "K_Amazon", self.QUERY, "--json",
                "--fault", "Amazon=fail:1", "--retries", "1", "--backoff", "0",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["sources"][0]["source"] == "Amazon"
        assert payload["sources"][0]["status"] == "retried"
        assert payload["counters"]["resilience.retries"] == 1

    def test_stats_without_flags_has_no_sources_section(self, capsys):
        import json

        code = main(["stats", "K_Amazon", self.QUERY, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sources" not in payload and "complete" not in payload
