"""repro.serve: MediationService semantics, protocol, and transports."""

from __future__ import annotations

import io
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.mediator import bookstore_mediator
from repro.obs import trace as obs
from repro.serve import (
    MediationService,
    Overloaded,
    ServiceConfig,
    SingleFlight,
    handle_line,
    handle_request,
    serve_jsonl,
    serve_tcp,
)

QUERY = '[ln = "Clancy"] and [fn = "Tom"]'
QUERIES = [
    QUERY,
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
]


def make_service(**config) -> MediationService:
    return MediationService(
        bookstore_mediator("amazon"), ServiceConfig(**config) if config else None
    )


class TestSingleFlightPrimitive:
    def test_sequential_calls_do_not_share(self):
        flights = SingleFlight()
        a, shared_a = flights.do("k", lambda: object())
        b, shared_b = flights.do("k", lambda: object())
        assert not shared_a and not shared_b
        assert a is not b
        assert len(flights) == 0

    def test_concurrent_calls_share_the_leaders_result(self):
        flights = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        joining = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=10.0)
            return object()

        results: list[tuple] = []
        append_lock = threading.Lock()

        def call(fn):
            value = flights.do("k", fn)
            with append_lock:
                results.append(value)

        def follow():
            joining.set()
            call(lambda: object())

        leader = threading.Thread(target=call, args=(compute,))
        leader.start()
        assert entered.wait(timeout=10.0)  # leader holds the flight open
        follower = threading.Thread(target=follow)
        follower.start()
        assert joining.wait(timeout=10.0)
        time.sleep(0.05)  # let the follower reach the flight table
        release.set()
        leader.join(timeout=10.0)
        follower.join(timeout=10.0)
        assert len(results) == 2
        values = {id(value) for value, _ in results}
        assert len(values) == 1  # identical object for both callers
        assert sorted(shared for _, shared in results) == [False, True]

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        release = threading.Event()

        def boom():
            release.wait(timeout=10.0)
            raise ValueError("nope")

        errors: list[BaseException] = []

        def call():
            try:
                flights.do("k", boom)
            except ValueError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.02)
        release.set()
        for t in threads:
            t.join(timeout=10.0)
        assert len(errors) == 3


class TestServiceSemantics:
    def test_translate_matches_direct_pipeline(self):
        service = make_service()
        direct = tdqm_translate(parse_query(QUERY), service.mediator.specs["Amazon"])
        served = service.translate(QUERY)
        assert set(served) == {"Amazon"}
        assert served["Amazon"].mapping == direct.mapping
        assert served["Amazon"].exact == direct.exact

    def test_mediate_matches_direct_pipeline(self):
        service = make_service()
        expected = bookstore_mediator("amazon").answer_mediated(parse_query(QUERY))
        answer = service.mediate(QUERY)
        assert sorted(answer.rows) == sorted(expected.rows)
        assert answer.complete

    def test_translate_batch_matches_loop(self):
        service = make_service()
        batched = service.translate_batch(QUERIES)
        assert len(batched) == len(QUERIES)
        for text, per_spec in zip(QUERIES, batched):
            direct = tdqm_translate(
                parse_query(text), service.mediator.specs["Amazon"]
            )
            assert per_spec["Amazon"].mapping == direct.mapping

    def test_unknown_source_rejected(self):
        from repro.core.errors import TranslationError

        with pytest.raises(TranslationError):
            make_service().translate(QUERY, sources=["nope"])

    def test_stats_shape(self):
        service = make_service()
        service.translate(QUERY)
        stats = service.stats()
        assert stats["requests"] == stats["completed"] == 1
        assert stats["rejected"] == stats["errors"] == 0
        assert stats["in_flight"] == 0
        assert stats["cache"]["misses"] >= 1
        assert stats["latency_max_ms"] >= 0.0

    def test_error_counted_and_raised(self):
        from repro.core.errors import ParseError

        service = make_service()
        with pytest.raises(ParseError):
            service.translate("[[[")
        assert service.stats()["errors"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_depth=-1)


class TestAdmissionControl:
    def test_overload_rejects_fast(self):
        service = make_service(max_concurrency=1, queue_depth=0)
        release = threading.Event()
        entered = threading.Event()

        def slow_answer(query, strict=None):
            entered.set()
            release.wait(timeout=10.0)
            return bookstore_mediator("amazon").answer_mediated(query, strict=strict)

        service.mediator.answer_mediated = slow_answer  # type: ignore[method-assign]
        occupant = threading.Thread(target=lambda: service.mediate(QUERY))
        occupant.start()
        assert entered.wait(timeout=10.0)
        with pytest.raises(Overloaded) as info:
            # A *different* query: must be rejected by admission, not coalesced.
            service.mediate(QUERIES[1])
        assert info.value.limit == 1
        release.set()
        occupant.join(timeout=10.0)
        stats = service.stats()
        assert stats["rejected"] == 1
        assert stats["requests"] == 1  # the rejected call was never admitted

    def test_queue_admits_up_to_depth(self):
        service = make_service(max_concurrency=1, queue_depth=2)
        assert service.config.admission_limit == 3

    def test_rejection_emits_obs_counter(self):
        service = make_service(max_concurrency=1, queue_depth=0)
        with obs.tracing("t") as tracer:
            with service._admitted_request():
                with pytest.raises(Overloaded):
                    with service._admitted_request():
                        pass
        assert tracer.counters["serve.rejected"] == 1
        assert tracer.counters["serve.requests"] == 1


class TestServiceSingleFlight:
    def test_identical_inflight_mediations_coalesce(self):
        service = make_service()
        release = threading.Event()
        entered = threading.Event()
        calls: list[int] = []
        real = service.mediator.answer_mediated

        def slow_answer(query, strict=None):
            calls.append(1)
            entered.set()
            release.wait(timeout=10.0)
            return real(query, strict=strict)

        service.mediator.answer_mediated = slow_answer  # type: ignore[method-assign]
        results: list[object] = [None, None]

        def client(i: int) -> None:
            results[i] = service.mediate(QUERY)

        first = threading.Thread(target=client, args=(0,))
        first.start()
        assert entered.wait(timeout=10.0)
        second = threading.Thread(target=client, args=(1,))
        second.start()
        deadline = time.monotonic() + 10.0
        while service.stats()["requests"] < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        first.join(timeout=10.0)
        second.join(timeout=10.0)
        assert sum(calls) == 1  # one pipeline run
        assert results[0] is results[1]  # identical object to all waiters
        assert service.stats()["coalesced"] == 1

    def test_commuted_duplicates_share_by_fingerprint(self):
        service = make_service()
        a = service.translate('[ln = "Clancy"] and [fn = "Tom"]')
        b = service.translate('[fn = "Tom"] and [ln = "Clancy"]')
        assert a["Amazon"] is b["Amazon"]  # cache-level dedup by fingerprint


class TestAcceptanceLoad:
    """ISSUE 5 acceptance: 16 threads, one shared service, exact everything."""

    def test_sixteen_thread_load(self):
        n_threads, rounds = 16, 25
        service = make_service(max_concurrency=8, queue_depth=16 * 25)
        serial = {
            text: tdqm_translate(
                parse_query(text), service.mediator.specs["Amazon"]
            )
            for text in QUERIES
        }
        responses: list[list] = [[] for _ in range(n_threads)]
        start = threading.Barrier(n_threads)

        def client(tid: int) -> None:
            start.wait()
            for r in range(rounds):
                text = QUERIES[(tid + r) % len(QUERIES)]
                responses[tid].append((text, service.translate(text)))

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(client, range(n_threads)))

        # Every request got a response...
        assert all(len(per) == rounds for per in responses)
        # ...bit-identical to the serial pipeline...
        for per_thread in responses:
            for text, served in per_thread:
                assert served["Amazon"].mapping == serial[text].mapping
                assert served["Amazon"].exact == serial[text].exact
        # ...with exact service and cache accounting (no lost updates):
        # every non-coalesced request performs exactly one cache lookup.
        stats = service.stats()
        assert stats["requests"] == stats["completed"] == n_threads * rounds
        assert stats["rejected"] == 0 and stats["errors"] == 0
        cache = stats["cache"]
        assert cache["hits"] + cache["misses"] == stats["requests"] - stats["coalesced"]
        assert cache["misses"] >= len(QUERIES)


class TestProtocol:
    def test_ping(self):
        response = handle_request(make_service(), {"op": "ping", "id": 9})
        assert response == {"id": 9, "op": "ping", "ok": True, "pong": True}

    def test_translate_roundtrip(self):
        response = handle_request(
            make_service(), {"op": "translate", "query": QUERY, "id": "a"}
        )
        assert response["ok"] and response["id"] == "a"
        assert response["mappings"]["Amazon"]["exact"] is True
        assert "author" in response["mappings"]["Amazon"]["text"]

    def test_mediate_roundtrip(self):
        response = handle_request(make_service(), {"op": "mediate", "query": QUERY})
        assert response["ok"] and response["complete"]
        assert response["count"] == len(response["rows"])
        assert response["rows"][0][0]["view"] == "book"

    def test_batch_roundtrip(self):
        response = handle_request(
            make_service(), {"op": "batch", "queries": QUERIES}
        )
        assert response["ok"]
        assert len(response["results"]) == len(QUERIES)

    def test_stats_roundtrip(self):
        response = handle_request(make_service(), {"op": "stats"})
        assert response["ok"] and "cache" in response["stats"]

    @pytest.mark.parametrize(
        "request_,expected_type",
        [
            ({"op": "nope"}, "bad-request"),
            ({"op": "translate"}, "bad-request"),
            ({"op": "translate", "query": 7}, "bad-request"),
            ({"op": "translate", "query": QUERY, "sources": "Amazon"}, "bad-request"),
            ({"op": "mediate", "query": QUERY, "strict": "yes"}, "bad-request"),
            ({"op": "batch", "queries": "nope"}, "bad-request"),
            ({"op": "translate", "query": "[[["}, "ParseError"),
        ],
    )
    def test_errors_never_tear_the_stream(self, request_, expected_type):
        response = handle_request(make_service(), request_)
        assert response["ok"] is False
        assert response["error"]["type"] == expected_type

    def test_bad_json_line(self):
        response = json.loads(handle_line(make_service(), "{nope"))
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-json"

    def test_overload_maps_to_backpressure_error(self):
        service = make_service(max_concurrency=1, queue_depth=0)
        with service._admitted_request():
            response = handle_request(service, {"op": "translate", "query": QUERY})
        assert response["error"]["type"] == "overloaded"
        assert response["error"]["limit"] == 1


class TestJsonLinesTransport:
    def _run(self, lines: list[str], **kwargs) -> list[dict]:
        out = io.StringIO()
        handled = serve_jsonl(make_service(), io.StringIO("\n".join(lines)), out, **kwargs)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert handled == len(responses)
        return responses

    def test_sequential_round_trip(self):
        responses = self._run(
            [
                json.dumps({"id": i, "op": "translate", "query": text})
                for i, text in enumerate(QUERIES)
            ]
            + ["", "# a comment"]
        )
        assert len(responses) == len(QUERIES)
        assert [r["id"] for r in responses] == list(range(len(QUERIES)))

    def test_pipelined_no_lost_or_duplicated_responses(self):
        n = 48
        requests = [
            json.dumps(
                {"id": i, "op": "translate", "query": QUERIES[i % len(QUERIES)]}
            )
            for i in range(n)
        ]
        responses = self._run(requests, workers=8)
        assert len(responses) == n
        ids = sorted(r["id"] for r in responses)
        assert ids == list(range(n))  # exactly once each
        assert all(r["ok"] for r in responses)


class TestTcpTransport:
    def test_tcp_round_trip(self):
        service = make_service()
        server = serve_tcp(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection((host, port), timeout=10.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                for i in range(3):
                    handle.write(
                        json.dumps({"id": i, "op": "translate", "query": QUERY}) + "\n"
                    )
                handle.write(json.dumps({"op": "stats", "id": 99}) + "\n")
                handle.flush()
                responses = [json.loads(handle.readline()) for _ in range(4)]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
        assert [r["id"] for r in responses] == [0, 1, 2, 99]
        assert all(r["ok"] for r in responses)
        # `stats` is not admission-controlled; only the translates count.
        assert responses[3]["stats"]["requests"] == 3

class TestMalformedInputHardening:
    """Hostile input must produce structured errors, never a dead socket."""

    def test_deeply_nested_garbage_over_tcp_answers_and_keeps_serving(self):
        # json.loads raises RecursionError (not JSONDecodeError) from the
        # C scanner on kilobyte-deep nesting; before the decode guard the
        # handler thread died and the connection dropped silently.
        service = make_service()
        server = serve_tcp(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection((host, port), timeout=10.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                handle.write("[" * 200_000 + "\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "bad-json"
                # The connection survived and still serves real requests.
                handle.write(
                    json.dumps({"id": 1, "op": "translate", "query": QUERY}) + "\n"
                )
                handle.flush()
                follow_up = json.loads(handle.readline())
                assert follow_up["ok"] is True
                assert follow_up["id"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)

    def test_truncated_json_gets_bad_json_response(self):
        from repro.serve import decode_line

        request, error = decode_line('{"op": "ping", ')
        assert request is None
        assert error is not None and error["error"]["type"] == "bad-json"

    def test_non_object_request_gets_bad_request_response(self):
        from repro.serve import decode_line

        request, error = decode_line("[1, 2, 3]")
        assert request is None
        assert error is not None and error["error"]["type"] == "bad-request"

    def test_handle_line_answers_recursion_bomb(self):
        response = json.loads(handle_line(make_service(), "[" * 200_000))
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-json"

    def test_unencodable_response_degrades_to_structured_error(self):
        from repro.serve import encode_response

        # A valid request can echo an id too deep for the encoder.
        deep: list = []
        probe = deep
        for _ in range(200_000):
            probe.append([])
            probe = probe[0]
        line = encode_response({"id": deep, "ok": True, "op": "ping"})
        response = json.loads(line)
        assert response["ok"] is False
        assert "not encodable" in response["error"]["message"]
