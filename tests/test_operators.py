"""Unit tests for the operator registry (repro.core.operators)."""

import pytest

from repro.core.errors import EvaluationError
from repro.core.operators import Operator, evaluate_op, get_operator, known_operators, register
from repro.core.values import Date, Month, Year
from repro.text import parse_pattern


class TestRegistry:
    def test_builtins_present(self):
        names = known_operators()
        for op in ("=", "!=", "<", "<=", ">", ">=", "contains", "starts", "during", "in"):
            assert op in names

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            get_operator("like")

    def test_inverse_metadata(self):
        assert get_operator("<").inverse == ">"
        assert get_operator(">=").inverse == "<="
        assert get_operator("=").symmetric

    def test_register_custom(self):
        register(Operator("approx", lambda a, b: abs(a - b) <= 1))
        assert evaluate_op("approx", 5, 6)
        assert not evaluate_op("approx", 5, 7)


class TestEquality:
    def test_string_equality_case_insensitive(self):
        assert evaluate_op("=", "Clancy", "clancy")
        assert evaluate_op("=", " Clancy ", "Clancy")

    def test_numeric_equality(self):
        assert evaluate_op("=", 1997, 1997)
        assert not evaluate_op("=", 1997, 1996)

    def test_not_equal(self):
        assert evaluate_op("!=", "a", "b")
        assert not evaluate_op("!=", "A", "a")

    def test_none_never_matches(self):
        assert not evaluate_op("=", None, "x")
        assert not evaluate_op("=", "x", None)


class TestComparisons:
    def test_ordering(self):
        assert evaluate_op("<", 1, 2)
        assert evaluate_op("<=", 2, 2)
        assert evaluate_op(">", 3, 2)
        assert evaluate_op(">=", 2, 2)
        assert not evaluate_op(">", 2, 2)

    def test_incomparable_types_raise(self):
        with pytest.raises(EvaluationError):
            evaluate_op("<", "abc", 5)


class TestContains:
    def test_single_word(self):
        assert evaluate_op("contains", "Tom Clancy writes", "tom")
        assert not evaluate_op("contains", "Tomato soup", "tom")

    def test_multi_word_phrase(self):
        assert evaluate_op("contains", "the data mining handbook", "data mining")
        assert not evaluate_op("contains", "mining of data", "data mining")

    def test_text_pattern(self):
        pattern = parse_pattern("java (and) jdk")
        assert evaluate_op("contains", "jdk tools for java", pattern)
        assert not evaluate_op("contains", "java beans", pattern)

    def test_bad_rhs(self):
        with pytest.raises(EvaluationError):
            evaluate_op("contains", "text", 42)


class TestStarts:
    def test_prefix(self):
        assert evaluate_op("starts", "JDK for Java", "jdk for")
        assert not evaluate_op("starts", "The JDK", "jdk")

    def test_bad_rhs(self):
        with pytest.raises(EvaluationError):
            evaluate_op("starts", "text", 42)


class TestDuring:
    def test_month_period(self):
        assert evaluate_op("during", Date(1997, 5, 12), Month(1997, 5))
        assert not evaluate_op("during", Date(1997, 6, 1), Month(1997, 5))

    def test_year_period(self):
        assert evaluate_op("during", Date(1997, 2), Year(1997))

    def test_bad_rhs(self):
        with pytest.raises(EvaluationError):
            evaluate_op("during", Date(1997, 1), "1997")


class TestIn:
    def test_membership(self):
        assert evaluate_op("in", "cs", ("cs", "ee"))
        assert not evaluate_op("in", "me", ("cs", "ee"))

    def test_bad_rhs(self):
        with pytest.raises(EvaluationError):
            evaluate_op("in", "cs", 42)
