"""repro.serve.snapshot: warm-start cache persistence and staleness.

The contract under test: a snapshot written from one cache restores into
a fresh cache such that every restored fingerprint answers **bit-
identically** to the original translation — unless the specification's
rule set changed in between, in which case the stale section must be
discarded wholesale (a restored-but-wrong translation would silently
corrupt every response for that fingerprint).
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StaleIndexError
from repro.core.matching import Rule
from repro.core.tdqm import tdqm_translate
from repro.perf import TranslationCache
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotTimer,
    restore_snapshot,
    snapshot_payload,
    spec_digest,
    specs_by_name,
    write_snapshot,
)
from repro.workloads.generator import random_query, random_spec, vocabulary

ATTRS = vocabulary(8)

query_seeds = st.integers(min_value=0, max_value=10_000)
spec_seeds = st.integers(min_value=0, max_value=200)


def warm(cache: TranslationCache, spec, seeds):
    """Translate one random query per seed through ``cache``."""
    queries = [
        random_query(ATTRS, seed=seed, n_constraints=5, max_depth=3) for seed in seeds
    ]
    return {q: cache.tdqm(q, spec) for q in queries}


class TestSpecDigest:
    def test_stable_across_identical_specs(self):
        assert spec_digest(random_spec(ATTRS, pair_count=3, seed=7)) == spec_digest(
            random_spec(ATTRS, pair_count=3, seed=7)
        )

    def test_sensitive_to_rule_removal(self):
        spec = random_spec(ATTRS, pair_count=3, seed=7)
        before = spec_digest(spec)
        spec.remove_rule(spec.rules[0].name)
        assert spec_digest(spec) != before

    def test_sensitive_to_rule_addition(self):
        spec = random_spec(ATTRS, pair_count=3, seed=7)
        before = spec_digest(spec)
        donor = random_spec(ATTRS, pair_count=1, seed=123).rules[0]
        spec.add_rule(
            Rule(
                name="donated",
                patterns=donor.patterns,
                emit=donor.emit,
                conditions=donor.conditions,
                exact=donor.exact,
            )
        )
        assert spec_digest(spec) != before

    def test_independent_of_version_stamp(self):
        # The stamp is process-local; the digest must not move when the
        # rule set round-trips back to the same declarative surface.
        spec = random_spec(ATTRS, pair_count=3, seed=7)
        before = spec_digest(spec)
        removed = spec.remove_rule(spec.rules[-1].name)
        spec.add_rule(removed)  # version bumped twice, same rules
        assert spec_digest(spec) == before


class TestSnapshotRoundTrip:
    def test_restore_preserves_hits_bit_identically(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=3, seed=1)
        source = TranslationCache()
        originals = warm(source, spec, range(6))
        path = tmp_path / "shard.json"
        report = write_snapshot(path, source, {spec.name: spec})
        assert report.entries > 0

        target = TranslationCache()
        restore = restore_snapshot(path, target, {spec.name: spec})
        assert restore.restored == report.entries
        assert restore.discarded_stale == 0

        for query, original in originals.items():
            hit = target.tdqm(query, spec)
            direct = tdqm_translate(query, spec)
            assert hit.mapping == original.mapping == direct.mapping
            assert hit.exact == original.exact
            assert hit.stats == original.stats
        # Every lookup above was answered from the restored entries.
        assert target.stats.hits == len(originals)
        assert target.stats.misses == 0

    def test_restore_skips_entries_already_present(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=2)
        cache = TranslationCache()
        warm(cache, spec, range(4))
        path = tmp_path / "shard.json"
        write_snapshot(path, cache, {spec.name: spec})
        restore = restore_snapshot(path, cache, {spec.name: spec})
        assert restore.restored == 0
        assert restore.skipped_present > 0

    def test_changed_rule_set_discards_section(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=3, seed=3)
        cache = TranslationCache()
        warm(cache, spec, range(5))
        path = tmp_path / "shard.json"
        report = write_snapshot(path, cache, {spec.name: spec})

        spec.remove_rule(spec.rules[0].name)
        fresh = TranslationCache()
        restore = restore_snapshot(path, fresh, {spec.name: spec})
        assert restore.restored == 0
        assert restore.discarded_stale == report.entries
        assert restore.stale_specs == (spec.name,)
        assert fresh.stats.size == 0

    def test_strict_restore_raises_stale_index_error(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=4)
        cache = TranslationCache()
        warm(cache, spec, range(3))
        path = tmp_path / "shard.json"
        write_snapshot(path, cache, {spec.name: spec})
        spec.remove_rule(spec.rules[0].name)
        with pytest.raises(StaleIndexError):
            restore_snapshot(path, TranslationCache(), {spec.name: spec}, strict=True)

    def test_unknown_spec_sections_are_discarded(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=5)
        cache = TranslationCache()
        warm(cache, spec, range(3))
        path = tmp_path / "shard.json"
        report = write_snapshot(path, cache, {spec.name: spec})
        other = random_spec(ATTRS, pair_count=2, seed=6)
        restore = restore_snapshot(path, TranslationCache(), {other.name: other})
        assert restore.restored == 0
        assert restore.discarded_unknown == report.entries

    def test_limit_bounds_the_export(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=7)
        cache = TranslationCache()
        warm(cache, spec, range(8))
        path = tmp_path / "shard.json"
        report = write_snapshot(path, cache, {spec.name: spec}, limit=3)
        assert report.entries <= 3
        restore = restore_snapshot(path, TranslationCache(), {spec.name: spec})
        assert restore.restored == report.entries

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps({"kind": "something-else"}), encoding="utf-8")
        with pytest.raises(ValueError, match="not a"):
            restore_snapshot(path, TranslationCache(), {})
        path.write_text(
            json.dumps({"kind": "repro.serve.cache-snapshot", "format": 999}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="format"):
            restore_snapshot(path, TranslationCache(), {})

    def test_payload_format_tag(self):
        payload, _ = snapshot_payload(TranslationCache(), {})
        assert payload["format"] == SNAPSHOT_FORMAT
        assert payload["kind"] == "repro.serve.cache-snapshot"


class TestSnapshotTimer:
    def test_stop_writes_final_snapshot(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=8)
        cache = TranslationCache()
        warm(cache, spec, range(3))
        path = tmp_path / "shard.json"
        timer = SnapshotTimer(path, cache, {spec.name: spec}, interval=0).start()
        assert not path.exists()  # interval 0: no periodic thread
        report = timer.stop()
        assert path.exists()
        assert report.entries > 0

    def test_write_now_is_atomic_on_disk(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=9)
        cache = TranslationCache()
        warm(cache, spec, range(2))
        path = tmp_path / "deep" / "shard.json"
        timer = SnapshotTimer(path, cache, {spec.name: spec}, interval=0)
        timer.write_now()
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_rejects_negative_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotTimer(tmp_path / "s.json", TranslationCache(), {}, interval=-1)


class TestConcurrentWrites:
    """The double-write race: periodic timer vs. final shutdown snapshot.

    Multiple writers hammering one snapshot path must never leave a
    torn/corrupt file behind (every observable file parses and restores)
    and must never collide on a shared temp name — each write stages in
    a unique temp file and lands via atomic rename, leaving no ``*.tmp``
    litter.
    """

    def test_concurrent_writers_never_corrupt_the_snapshot(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=11)
        cache = TranslationCache()
        warm(cache, spec, range(4))
        path = tmp_path / "shard.json"
        specs = {spec.name: spec}
        # One writer is the "timer", the rest are direct final-snapshot
        # writers — the exact SIGTERM-vs-periodic shape from worker.py.
        timer = SnapshotTimer(path, cache, specs, interval=0)
        errors: list[str] = []
        stop = threading.Event()

        def write_direct() -> None:
            for _ in range(25):
                write_snapshot(path, cache, specs)

        def write_via_timer() -> None:
            for _ in range(25):
                timer.write_now()

        def read_loop() -> None:
            while not stop.is_set():
                if not path.exists():
                    continue
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except Exception as exc:  # noqa: BLE001 - the bug under test
                    errors.append(f"torn read: {exc!r}")
                    return
                if payload.get("kind") != "repro.serve.cache-snapshot":
                    errors.append(f"foreign payload: {payload.get('kind')!r}")
                    return

        writers = [threading.Thread(target=write_direct) for _ in range(4)]
        writers.append(threading.Thread(target=write_via_timer))
        readers = [threading.Thread(target=read_loop) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        for thread in writers:
            thread.join(timeout=120.0)
        stop.set()
        for thread in readers:
            thread.join(timeout=30.0)

        assert errors == []
        assert [p.name for p in tmp_path.glob("*.tmp")] == []
        restore = restore_snapshot(path, TranslationCache(), specs)
        assert restore.restored > 0


class TestSnapshotTimerReload:
    def test_update_spec_repoints_the_export_table(self, tmp_path):
        old = random_spec(ATTRS, pair_count=2, seed=12)
        cache = TranslationCache()
        warm(cache, old, range(3))
        path = tmp_path / "shard.json"
        timer = SnapshotTimer(path, cache, {old.name: old}, interval=0)
        timer.write_now()

        # Same name, different rules — the hot-reload shape.  Without
        # update_spec the timer would keep exporting under the retired
        # spec's digest forever.
        new = random_spec(ATTRS, pair_count=3, seed=13)
        replacement = type(old)(name=old.name, target=new.target, rules=new.rules)
        assert timer.update_spec(replacement) is True
        warm(cache, replacement, range(2))
        report = timer.write_now()
        assert report.entries > 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        section = payload["specs"][old.name]
        assert section["digest"] == spec_digest(replacement)

    def test_update_spec_ignores_unknown_names(self, tmp_path):
        spec = random_spec(ATTRS, pair_count=2, seed=14)
        timer = SnapshotTimer(
            tmp_path / "s.json", TranslationCache(), {spec.name: spec}, interval=0
        )
        other = random_spec(ATTRS, pair_count=2, seed=15)
        stranger = type(spec)(
            name=spec.name + "-other", target=other.target, rules=other.rules
        )
        assert timer.update_spec(stranger) is False


class TestSpecsByName:
    def test_rekeys_source_table_by_spec_name(self):
        from repro.obs.stats import builtin_mediator

        mediator = builtin_mediator({"K_Amazon"})
        assert mediator is not None
        assert set(mediator.specs) == {"Amazon"}
        assert set(specs_by_name(mediator.specs)) == {"K_Amazon"}


# ---------------------------------------------------------------------------
# Property: export -> import is lossless for fresh specs, lossy-by-design
# for changed ones.
# ---------------------------------------------------------------------------


@given(spec_seeds, st.sets(query_seeds, min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_round_trip_preserves_cache_hits_bit_identically(sseed, qseeds):
    spec = random_spec(ATTRS, pair_count=2, seed=sseed)
    source = TranslationCache()
    originals = warm(source, spec, sorted(qseeds))

    payload, report = snapshot_payload(source, {spec.name: spec})
    # The payload must survive JSON framing (what the file format does).
    payload = json.loads(json.dumps(payload, sort_keys=True))

    target = TranslationCache()
    restored = 0
    from repro.serve.snapshot import _restore_entry

    for section in payload["specs"].values():
        for entry in section["entries"]:
            if _restore_entry(target, spec, entry):
                restored += 1
    assert restored == report.entries

    for query, original in originals.items():
        hit = target.tdqm(query, spec)
        assert hit.mapping == original.mapping
        assert hit.exact == original.exact
        assert hit.stats == original.stats
    assert target.stats.misses == 0


@given(spec_seeds, st.sets(query_seeds, min_size=1, max_size=4))
@settings(max_examples=25, deadline=None)
def test_round_trip_discards_entries_whose_spec_changed(tmp_path_factory, sseed, qseeds):
    spec = random_spec(ATTRS, pair_count=2, seed=sseed)
    cache = TranslationCache()
    warm(cache, spec, sorted(qseeds))
    path = tmp_path_factory.mktemp("snap") / "shard.json"
    report = write_snapshot(path, cache, {spec.name: spec})

    spec.remove_rule(spec.rules[0].name)
    fresh = TranslationCache()
    restore = restore_snapshot(path, fresh, {spec.name: spec})
    assert restore.restored == 0
    assert restore.discarded_stale == report.entries
    assert fresh.stats.size == 0
