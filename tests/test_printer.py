"""Unit tests for query rendering (repro.core.printer)."""

from repro.core.ast import C, conj, disj
from repro.core.parser import parse_query
from repro.core.printer import render_tree, to_text


class TestToText:
    def test_constraint(self):
        assert to_text(parse_query('[ln = "Clancy"]')) == '[ln = "Clancy"]'

    def test_top_level_has_no_outer_parens(self):
        text = to_text(parse_query("[a = 1] and [b = 2]"))
        assert text == "[a = 1] and [b = 2]"

    def test_nested_gets_parens(self):
        text = to_text(parse_query("([a = 1] or [b = 2]) and [c = 3]"))
        assert text == "([a = 1] or [b = 2]) and [c = 3]"

    def test_constants(self):
        assert to_text(parse_query("true")) == "true"
        assert to_text(parse_query("false")) == "false"

    def test_in_collection(self):
        text = to_text(parse_query('[dept in ("cs", "ee")]'))
        assert text == '[dept in ("cs", "ee")]'

    def test_structured_values(self):
        assert to_text(parse_query("[X_range = (10:30)]")) == "[X_range = (10:30)]"
        assert to_text(parse_query("[C_ll = (10, 20)]")) == "[C_ll = (10, 20)]"
        assert to_text(parse_query("[pdate during May/97]")) == "[pdate during May/97]"

    def test_text_pattern(self):
        text = to_text(parse_query("[ti contains java (near) jdk]"))
        assert text == "[ti contains java (near) jdk]"

    ROUND_TRIP_CASES = [
        '[ln = "Clancy"] and [fn = "Tom"]',
        '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
        "[fac[1].ln = fac[2].ln]",
        "[fac.bib contains data (near) mining] and [fac.dept = \"cs\"]",
        "[pdate during May/97] or [pdate during 97]",
        "[X_range = (10:30)] and [C_ll = (10, 20)]",
        "true",
    ]

    def test_round_trip(self):
        for case in self.ROUND_TRIP_CASES:
            query = parse_query(case)
            assert parse_query(to_text(query)) == query


class TestRenderTree:
    def test_leaf(self):
        assert render_tree(C("a", "=", 1)) == "[a = 1]"

    def test_structure(self):
        q = conj([disj([C("a", "=", 1), C("b", "=", 2)]), C("c", "=", 3)])
        out = render_tree(q)
        lines = out.splitlines()
        assert lines[0] == "AND"
        assert any("OR" in line for line in lines)
        assert any("[c = 3]" in line for line in lines)

    def test_annotations(self):
        q = conj([C("a", "=", 1), C("b", "=", 2)])
        out = render_tree(q, {id(q): "De=ε"})
        assert "De=ε" in out.splitlines()[0]


class TestToDot:
    def test_structure(self):
        from repro.core.printer import to_dot
        from repro.core.parser import parse_query

        dot = to_dot(parse_query("([a = 1] or [b = 2]) and not [c = 3]"))
        assert dot.startswith("digraph")
        assert 'label="AND"' in dot and 'label="OR"' in dot and 'label="NOT"' in dot
        assert dot.count("->") == 5
        assert dot.rstrip().endswith("}")

    def test_escapes_quotes(self):
        from repro.core.printer import to_dot
        from repro.core.ast import C

        dot = to_dot(C("ln", "=", "Clancy"))
        assert '\\"Clancy\\"' in dot
