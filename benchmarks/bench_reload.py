"""Hot reload under load: what a live spec swap costs the serving path.

The lifecycle story (``repro.registry`` + ``MediationService.reload_spec``)
claims a publish can land in a running service without a restart and
without disturbing in-flight traffic.  This bench pins the two numbers
behind that claim:

* **reload latency** — how long one ``reload_spec`` call takes while
  closed-loop clients hammer the service (precompile + swap + cache
  invalidation, all under live contention);
* **churn overhead** — steady-state throughput with periodic reloads vs
  an undisturbed run.  Every reload invalidates the spec's cache
  section, so the churn run pays recurring re-translation; the overhead
  must stay bounded, not collapse.

Correctness is audited alongside: zero lost responses, and every
response bit-identical to one spec version's reference answer — never a
blend.  Results go to ``BENCH_reload.json`` (not part of the CI bench
gate; run directly with ``pytest benchmarks/bench_reload.py``).
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from obs_harness import BenchRecorder, median_of, sweep

from repro.obs.stats import builtin_mediator
from repro.rules.declarative import spec_from_dict
from repro.serve import MediationService, ServiceConfig

QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    '[ln = "King"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
]

WORD = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author-word", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "variant: ln -> author-word",
        }
    ],
}

WIDE = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "variant2: ln -> author",
        }
    ],
}


def _make_service(n_workers: int, total: int) -> MediationService:
    mediator = builtin_mediator({"K_Amazon"})
    config = ServiceConfig(max_concurrency=n_workers, queue_depth=total)
    return MediationService(mediator, config)


def _closed_loop(service, n_workers: int, rounds: int) -> list[list]:
    responses: list[list] = [[] for _ in range(n_workers)]
    barrier = threading.Barrier(n_workers)

    def worker(tid: int) -> None:
        barrier.wait()
        for round_ in range(rounds):
            text = QUERIES[(tid + round_) % len(QUERIES)]
            responses[tid].append(service.translate(text))

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        list(pool.map(worker, range(n_workers)))
    return responses


def test_reload_under_load(report):
    """A live swap must cost milliseconds, not a restart."""
    n_workers = sweep((8,), quick=(4,))[0]
    rounds = sweep((80,), quick=(30,))[0]
    reload_count = sweep((8,), quick=(4,))[0]
    total = n_workers * rounds

    # Reference answers per spec version, for the blend audit.
    variants = [None, WORD, WIDE]
    references = []
    for payload in variants:
        probe = _make_service(n_workers, total)
        if payload is not None:
            probe.reload_spec(spec_from_dict(payload))
        references.append(
            {text: str(probe.translate(text)["Amazon"].mapping) for text in QUERIES}
        )
    allowed = {
        text: {ref[text] for ref in references} for text in QUERIES
    }

    # Baseline: undisturbed closed-loop run on a warm service.
    base_service = _make_service(n_workers, total)
    _closed_loop(base_service, n_workers, rounds)  # warm-up
    base_seconds = median_of(
        lambda: _closed_loop(base_service, n_workers, rounds), repeat=3
    )

    # Churn: same load with periodic reloads alternating the variants.
    churn_service = _make_service(n_workers, total)
    _closed_loop(churn_service, n_workers, rounds)
    reload_latencies: list[float] = []
    audit: list[list] = []

    def churn_run() -> None:
        stop = threading.Event()

        def reloader() -> None:
            for i in range(reload_count):
                spec = spec_from_dict(WORD if i % 2 == 0 else WIDE)
                started = time.perf_counter()
                churn_service.reload_spec(spec)
                reload_latencies.append(time.perf_counter() - started)
                if stop.wait(base_seconds / (reload_count + 1)):
                    return

        driver = threading.Thread(target=reloader, daemon=True)
        driver.start()
        audit.append(_closed_loop(churn_service, n_workers, rounds))
        stop.set()
        driver.join(timeout=60.0)

    churn_started = time.perf_counter()
    churn_run()
    churn_seconds = time.perf_counter() - churn_started

    # Zero lost responses, and no blended answers anywhere.
    responses = audit[0]
    assert all(len(per) == rounds for per in responses)
    for tid, per_worker in enumerate(responses):
        for round_, served in enumerate(per_worker):
            text = QUERIES[(tid + round_) % len(QUERIES)]
            assert str(served["Amazon"].mapping) in allowed[text], (tid, round_)

    reload_ms = sorted(reload_latencies)
    median_reload = reload_ms[len(reload_ms) // 2]
    overhead = churn_seconds / base_seconds

    recorder = BenchRecorder(
        "reload", "repro.serve: hot spec reload under closed-loop load"
    )
    recorder.add(
        workers=n_workers,
        requests=total,
        reloads=len(reload_latencies),
        base_seconds=base_seconds,
        churn_seconds=churn_seconds,
        overhead=round(overhead, 2),
        reload_median_ms=round(median_reload * 1e3, 3),
        reload_max_ms=round(max(reload_latencies) * 1e3, 3),
    )
    recorder.write()
    report(
        "repro.serve: hot reload under load (registry lifecycle)",
        [
            f"  undisturbed : {base_seconds * 1e3:8.3f} ms  "
            f"({total} requests, {n_workers} workers)",
            f"  with churn  : {churn_seconds * 1e3:8.3f} ms  "
            f"({len(reload_latencies)} reloads)",
            f"  overhead    : {overhead:.2f}x",
            f"  reload p50  : {median_reload * 1e3:8.3f} ms   "
            f"max {max(reload_latencies) * 1e3:.3f} ms",
        ],
    )
    # A reload is a precompile + pointer swap + section invalidation —
    # if it ever approaches a second, something started blocking the
    # world again.
    assert median_reload < 1.0
    assert all(len(per) == rounds for per in responses)
