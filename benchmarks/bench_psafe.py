"""E12-E14/F12: conjunct partitioning (DESIGN.md row E12-E14/F12).

Regenerates the partitions of Example 12 (Q̂_book), Example 13/14 (Q̂a and
Q̂b of Figure 12), and times Algorithm PSafe on each.
"""

from repro.core.printer import to_text
from repro.core.psafe import psafe
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import (
    example13_qa,
    example13_qb,
    example13_spec,
    qbook,
)


def _describe(query, result):
    lines = [f"Q = {to_text(query)}"]
    for m in result.cross_matchings:
        group = ", ".join(sorted(str(c) for c in m.constraints))
        cands = [
            "{" + ", ".join(f"C{i + 1}" for i in sorted(block)) + "}"
            for block in m.candidates
        ]
        lines.append(f"  cross-matching (term {m.term_id}): {{{group}}} "
                     f"candidates: {', '.join(cands)}")
    blocks = [
        "{" + ", ".join(f"C{i + 1}" for i in block) + "}" for block in result.blocks
    ]
    lines.append(f"  partition: {', '.join(blocks)}")
    return lines


def test_example12_qbook_partition(benchmark, report):
    query = qbook()
    conjuncts = list(query.children)
    result = benchmark(lambda: psafe(conjuncts, K_AMAZON.matcher()))
    assert [list(b) for b in result.blocks] == [[0], [1, 2]]
    report("Example 12: partitioning Q_book", _describe(query, result))


def test_example13_qa(benchmark, report):
    spec = example13_spec()
    query = example13_qa()
    conjuncts = list(query.children)
    result = benchmark(lambda: psafe(conjuncts, spec.matcher()))
    assert [list(b) for b in result.blocks] == [[0, 1], [2]]
    report("Example 13/14: Qa = (x)(y)(yu v v)", _describe(query, result))


def test_example14_qb(benchmark, report):
    spec = example13_spec()
    query = example13_qb()
    conjuncts = list(query.children)
    result = benchmark(lambda: psafe(conjuncts, spec.matcher()))
    assert [list(b) for b in result.blocks] == [[0, 1, 2]]
    report("Example 13/14: Qb = (x)(y v u)(y v v)", _describe(query, result))
