"""E1/E2/E3/E5: the worked examples as benchmarks (DESIGN.md rows E1-E5).

Each bench times the translation and asserts the paper's exact outcome, so
the harness both measures and re-verifies the examples on every run.
"""

from repro.core.dnf_mapper import dnf_map
from repro.core.filters import build_filter
from repro.core.printer import to_text
from repro.core.tdqm import tdqm
from repro.rules import K1, K2, K_AMAZON, K_CLBOOKS
from repro.workloads.paper_queries import (
    example1_query,
    example2_query,
    example3_query,
)


def test_example1_amazon(benchmark, report):
    query = example1_query()
    mapping = benchmark(lambda: tdqm(query, K_AMAZON))
    assert to_text(mapping) == '[author = "Clancy, Tom"]'
    report(
        "Example 1 (Amazon)",
        [f"Q  = {to_text(query)}", f"S(Q) = {to_text(mapping)}"],
    )


def test_example1_clbooks_with_filter(benchmark, report):
    query = example1_query()
    plan = benchmark(lambda: build_filter(query, {"Clbooks": K_CLBOOKS}))
    assert to_text(plan.mappings["Clbooks"]) == (
        "[author contains tom] and [author contains clancy]"
    )
    assert plan.filter == plan.query
    report(
        "Example 1 (Clbooks relaxation)",
        [
            f"Q_c = {to_text(plan.mappings['Clbooks'])}",
            f"F   = {to_text(plan.filter)}  (redo Q as a filter)",
        ],
    )


def test_example2_dependency(benchmark, report):
    query = example2_query()
    mapping = benchmark(lambda: tdqm(query, K_AMAZON))
    expected = '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
    assert to_text(mapping) == expected
    report(
        "Example 2 (dependent conjuncts)",
        [
            f"Q  = {to_text(query)}",
            f"Qb = {to_text(mapping)}   (minimal; the naive Qa would drop fn)",
        ],
    )


def test_example3_two_sources(benchmark, report):
    query = example3_query()
    plan = benchmark(lambda: build_filter(query, {"T1": K1, "T2": K2}))
    assert to_text(plan.filter) == "[fac.bib contains data (near) mining]"
    assert to_text(plan.mappings["T2"]) == "[fac.prof.dept = 230]"
    report(
        "Example 3 (two-source mapping)",
        [
            f"S1(Q) = {to_text(plan.mappings['T1'])}",
            f"S2(Q) = {to_text(plan.mappings['T2'])}",
            f"F     = {to_text(plan.filter)}",
        ],
    )


def test_example5_dnf_route(benchmark, report):
    query = example2_query()
    mapping = benchmark(lambda: dnf_map(query, K_AMAZON))
    assert to_text(mapping) == (
        '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
    )
    report(
        "Example 5 (Algorithm DNF)",
        [f"S(Q) via DNF = {to_text(mapping)}"],
    )
