"""Algorithm × workload summary matrix.

One table that puts the whole evaluation side by side: for each workload
shape (simple conjunction, independent chain, dependent tree, paper
queries), the time and output size of Algorithm DNF vs Algorithm TDQM,
plus the PSafe partition character.  A compact, reproducible restatement
of Sections 5, 6, and 8 in a single view.
"""

from obs_harness import best_of

from repro.core.ast import And
from repro.core.dnf_mapper import dnf_map
from repro.core.psafe import psafe
from repro.core.tdqm import tdqm
from repro.rules import K_AMAZON
from repro.workloads.generator import (
    chain_query,
    dependent_conjunction,
    simple_conjunction,
    synthetic_spec,
    vocabulary,
)
from repro.workloads.paper_queries import example2_query, figure2_q1, qbook


def _workloads():
    chain_spec = synthetic_spec([], singletons=vocabulary(20), name="K_chain")
    dep_query, dep_spec = dependent_conjunction(4, 3, 1, seed=5)
    flat_spec = synthetic_spec(
        [("a0", "a1")], singletons=vocabulary(12), name="K_flat"
    )
    return [
        ("simple conjunction (N=12)", simple_conjunction(vocabulary(12), 0), flat_spec),
        ("independent chain (n=8)", chain_query(8), chain_spec),
        ("dependent conjunction (n=4,k=3,e=1)", dep_query, dep_spec),
        ("Figure 2 Q1", figure2_q1(), K_AMAZON),
        ("Example 2", example2_query(), K_AMAZON),
        ("Q_book (Figure 7)", qbook(), K_AMAZON),
    ]


def _time(fn, repeat=3):
    return best_of(fn, repeat=repeat) * 1e3


def test_algorithm_matrix(benchmark, report):
    header = (
        f"{'workload':<36} {'TDQM ms':>8} {'DNF ms':>8} "
        f"{'TDQM nodes':>11} {'DNF nodes':>10} {'blocks':>7}"
    )
    rows = [header]
    for label, query, spec in _workloads():
        t_ms = _time(lambda: tdqm(query, spec.matcher()))
        d_ms = _time(lambda: dnf_map(query, spec.matcher()))
        t_nodes = tdqm(query, spec.matcher()).node_count()
        d_nodes = dnf_map(query, spec.matcher()).node_count()
        if isinstance(query, And) and not all(c.is_leaf for c in query.children):
            partition = psafe(list(query.children), spec.matcher())
            blocks = "/".join(str(len(b)) for b in partition.blocks)
        else:
            blocks = "-"
        rows.append(
            f"{label:<36} {t_ms:>8.2f} {d_ms:>8.2f} "
            f"{t_nodes:>11} {d_nodes:>10} {blocks:>7}"
        )
    report("Algorithm x workload matrix (Sections 5/6/8)", rows)

    query = qbook()
    benchmark(lambda: tdqm(query, K_AMAZON.matcher()))
