"""C6: the hot-path translation cache and the batch API (repro.perf).

Mediators re-translate the same handful of queries over and over — every
``answer_mediated`` call rebuilds the filter plan, and interactive
clients repeat whole queries verbatim.  :class:`repro.perf.TranslationCache`
memoizes whole TDQM results keyed by the query's canonical fingerprint
and the specification's version stamp, so a repeat costs one normalize +
fingerprint + dict lookup instead of a full prematch/PSafe/SCM run.

This bench pins that claim: warm-cache translation must be at least 2x
faster than uncached translation (in practice it is orders of magnitude),
and the batch API must not be slower than the equivalent per-query loop.
Results go to ``BENCH_cache.json``; the CI gate watches both the raw
latencies and the recorded speedup.
"""

from obs_harness import BenchRecorder, median_of, sweep

from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.perf import TranslationCache, translate_batch
from repro.rules import builtin_specifications
from repro.workloads.generator import chain_query, synthetic_spec, vocabulary

#: Realistic mediator workload: the bookstore queries every bench reuses.
BOOK_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
]


def _workload():
    """(spec, queries): a synthetic spec plus structurally rich queries."""
    n = sweep((10,), quick=(8,))[0]
    spec = synthetic_spec([], singletons=vocabulary(2 * n), name="K_cache")
    queries = [chain_query(k) for k in range(4, n + 1, 2)]
    return spec, queries


def test_warm_cache_speedup(benchmark, report):
    """A cache hit must beat re-translation by at least 2x."""
    spec, queries = _workload()
    cache = TranslationCache()
    for query in queries:  # populate
        cache.tdqm(query, spec)
    assert cache.stats.misses == len(queries)

    uncached = median_of(
        lambda: [tdqm_translate(q, spec) for q in queries], repeat=7
    )
    warm = median_of(lambda: [cache.tdqm(q, spec) for q in queries], repeat=7)
    speedup = uncached / warm
    assert cache.stats.misses == len(queries)  # every timed run was all hits

    # Bit-identity: a hit returns exactly what translation would.
    for query in queries:
        assert cache.tdqm(query, spec).mapping == tdqm_translate(query, spec).mapping

    recorder = BenchRecorder(
        "cache", "repro.perf: warm-cache translation vs uncached"
    )
    recorder.add(
        queries=len(queries),
        uncached_seconds=uncached,
        warm_seconds=warm,
        speedup=round(speedup, 2),
    )
    recorder.write()
    report(
        "repro.perf: warm-cache translation vs uncached",
        [
            f"  uncached : {uncached * 1e3:8.3f} ms  ({len(queries)} queries)",
            f"  warm     : {warm * 1e3:8.3f} ms",
            f"  speedup  : {speedup:.1f}x",
        ],
    )
    assert speedup >= 2.0, f"warm cache only {speedup:.2f}x faster"

    benchmark(lambda: [cache.tdqm(q, spec) for q in queries])


def test_batch_translation(benchmark, report):
    """translate_batch: shared normalization beats the naive loop.

    The batch run parses/normalizes/fingerprints each query once for all
    sources and reuses one cache, so a batch with repeats degenerates to
    dict lookups.  Gate: the batch path must not be slower than the
    per-query loop on the same workload (identical results asserted).
    """
    specs = {
        name: spec
        for name, spec in builtin_specifications().items()
        if name in ("K_Amazon", "K_map")
    }
    repeats = sweep((20,), quick=(10,))[0]
    queries = [parse_query(text) for text in BOOK_QUERIES] * repeats

    def loop():
        return [
            {name: tdqm_translate(q, spec) for name, spec in specs.items()}
            for q in queries
        ]

    def batch():
        return translate_batch(queries, specs, cache=TranslationCache())

    loop_seconds = median_of(loop, repeat=5)
    batch_seconds = median_of(batch, repeat=5)
    speedup = loop_seconds / batch_seconds

    loop_results, batch_results = loop(), batch()
    for per_loop, per_batch in zip(loop_results, batch_results):
        for name in specs:
            assert per_loop[name].mapping == per_batch[name].mapping
            assert per_loop[name].exact == per_batch[name].exact

    recorder = BenchRecorder(
        "cache_batch", "repro.perf: translate_batch vs per-query loop"
    )
    recorder.add(
        queries=len(queries),
        unique_queries=len(BOOK_QUERIES),
        sources=len(specs),
        loop_seconds=loop_seconds,
        batch_seconds=batch_seconds,
        speedup=round(speedup, 2),
    )
    recorder.write()
    report(
        "repro.perf: translate_batch vs per-query loop",
        [
            f"  loop   : {loop_seconds * 1e3:8.3f} ms  "
            f"({len(queries)} queries x {len(specs)} sources)",
            f"  batch  : {batch_seconds * 1e3:8.3f} ms",
            f"  speedup: {speedup:.1f}x",
        ],
    )
    assert speedup >= 2.0, f"batch path only {speedup:.2f}x faster"

    benchmark(batch)


def test_cache_invalidation_cost(report):
    """Spec mutation invalidates logically — old entries just never hit."""
    spec, queries = _workload()
    cache = TranslationCache()
    for query in queries:
        cache.tdqm(query, spec)
    before = cache.stats
    from repro.core.matching import Rule

    template = spec.rules[0]
    spec.add_rule(Rule(
        name="late-rule",
        patterns=template.patterns,
        emit=template.emit,
        exact=False,
    ))
    # Old entries are unreachable (version changed) — re-asking misses.
    cache.tdqm(queries[0], spec)
    after = cache.stats
    assert after.misses == before.misses + 1
    report(
        "repro.perf: version-stamp invalidation",
        [
            f"  entries before mutation: {before.size}",
            f"  misses after add_rule  : {after.misses - before.misses} (forced rebuild)",
        ],
    )
