"""Ablations: remove one design choice at a time and measure the damage.

* **no submatching suppression** (SCM step 2) — the mapping stays
  semantically minimal (Lemma 1 makes the extra emissions redundant) but
  grows in size: redundancy the paper's step 2 exists to avoid;
* **no prematch cache** (Section 7.1.3) — recomputing ``M(Q̂, K)`` from
  scratch at every subset query multiplies matching work across the
  TDQM traversal;
* **no EDNF** (use full DNF in the safety check) — the partition is the
  same (Lemma 3) but the number of terms examined explodes with the
  conjunct size instead of the dependency degree;
* **no PSafe** (rewrite every conjunction as one block) — correct but
  non-compact: Disjunctivize cascades into a full DNF conversion.
"""

from obs_harness import best_of

from repro.core.ast import conj, disj
from repro.core.matching import Matcher, match_rule
from repro.core.psafe import psafe
from repro.core.scm import scm_translate
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import disjunctivize, tdqm, tdqm_translate
from repro.rules import K_AMAZON
from repro.workloads.generator import (
    chain_query,
    dependent_conjunction,
    synthetic_spec,
    vocabulary,
)
from repro.workloads.paper_queries import figure2_q1, qbook


class NoCacheMatcher(Matcher):
    """Ablation: recompute the prematch on *every* call instead of caching.

    The universe still grows monotonically (that part is a correctness
    invariant — EDNF needs potential matchings reaching outside the
    current subquery); only the memoization is removed, so each
    ``matchings``/``potential`` call pays the full rule-matching cost.
    """

    def __init__(self, rules):
        super().__init__(rules)
        self._seen: frozenset = frozenset()

    def potential(self, constraints):
        self._seen = self._seen | frozenset(constraints)
        ordered = sorted(self._seen, key=str)
        found = []
        for rule in self.rules:
            found.extend(match_rule(rule, ordered))
        return found

    def matchings(self, constraints):
        subset = frozenset(constraints)
        return [m for m in self.potential(subset) if m.constraints <= subset]


def test_ablate_submatching_suppression(benchmark, report):
    query = figure2_q1()

    def with_and_without():
        result = scm_translate(query, K_AMAZON.matcher())
        unsuppressed = conj(m.emission for m in result.all_matchings)
        return result.mapping, unsuppressed

    mapping, unsuppressed = benchmark(with_and_without)
    # Semantically the redundant emissions change nothing (Lemma 1)...
    # ...but propositionally the extra pdate term shows up as extra size.
    assert unsuppressed.node_count() > mapping.node_count()
    report(
        "Ablation: SCM without submatching suppression",
        [
            f"with step 2   : {mapping.node_count()} nodes",
            f"without step 2: {unsuppressed.node_count()} nodes "
            "(redundant R7 emission retained)",
        ],
    )


def test_ablate_prematch_cache(benchmark, report):
    query = qbook()

    def timed(matcher_factory):
        return best_of(lambda: tdqm_translate(query, matcher_factory()))

    cached = timed(K_AMAZON.matcher)
    uncached = timed(lambda: NoCacheMatcher(K_AMAZON.rules))
    assert prop_equivalent(
        tdqm(query, K_AMAZON.matcher()),
        tdqm(query, NoCacheMatcher(K_AMAZON.rules)),
    )
    report(
        "Ablation: matcher without the Section 7.1.3 prematch",
        [
            f"cached   : {cached * 1e3:.2f} ms",
            f"uncached : {uncached * 1e3:.2f} ms "
            f"({uncached / cached:.1f}x slower on Q_book)",
        ],
    )
    benchmark(lambda: tdqm_translate(query, NoCacheMatcher(K_AMAZON.rules)))


def test_ablate_ednf(benchmark, report):
    rows = ["   k   EDNF psafe(ms)   full-DNF psafe(ms)   same partition"]
    for k in (2, 3, 4, 5):
        query, spec = dependent_conjunction(4, k, 1, seed=3)
        conjuncts = list(query.children)

        def timed(use_ednf):
            return best_of(
                lambda: psafe(conjuncts, spec.matcher(), use_ednf=use_ednf),
                repeat=3,
            )

        same = (
            psafe(conjuncts, spec.matcher()).blocks
            == psafe(conjuncts, spec.matcher(), use_ednf=False).blocks
        )
        assert same  # Lemma 3
        rows.append(
            f"{k:>4}   {timed(True) * 1e3:>13.2f}   {timed(False) * 1e3:>17.2f}"
            f"   {same}"
        )
    report("Ablation: PSafe over full DNF instead of EDNF", rows)

    query, spec = dependent_conjunction(4, 4, 1, seed=3)
    benchmark(
        lambda: psafe(list(query.children), spec.matcher(), use_ednf=False)
    )


def test_ablate_psafe(benchmark, report):
    """Single-block rewriting == the blind conversion TDQM avoids."""
    n = 8
    spec = synthetic_spec([], singletons=vocabulary(2 * n), name="K_abl")
    query = chain_query(n)

    def no_psafe():
        # Treat the whole conjunction as one inseparable block.
        rewritten = disjunctivize(list(query.children))
        return tdqm(rewritten, spec.matcher())

    blind = benchmark(no_psafe)
    smart = tdqm(query, spec.matcher())
    assert prop_equivalent(blind, smart)
    report(
        "Ablation: TDQM without PSafe (single-block rewrite)",
        [
            f"with PSafe    : {smart.node_count()} nodes",
            f"without PSafe : {blind.node_count()} nodes "
            f"({blind.node_count() / smart.node_count():.0f}x larger at n={n})",
        ],
    )
