"""C3: Section 8's safety-check cost model — EDNF pays ~2^(ne), full DNF
pays 2^(nk).

The workload is a conjunction of n disjunctive conjuncts, k constraints
each, where exactly e constraints per conjunct participate in
cross-conjunct pair rules.  The EDNF of each conjunct keeps only those e
constraints (plus one ε), so the number of safety-check terms tracks the
dependency degree — and collapses to a single all-ε term at e = 0 ("no
dependencies, virtually no cost") — while the full-DNF check always
processes k^n terms.
"""

from obs_harness import best_of

from repro.core.dnf import dnf_term_count
from repro.core.ednf import ednf
from repro.core.psafe import psafe
from repro.workloads.generator import dependent_conjunction

N_CONJUNCTS = 4
K_CONSTRAINTS = 4
E_SWEEP = (0, 1, 2, 3, 4)


def _ednf_term_product(query, matcher):
    total = 1
    for child in query.children:
        total *= len(ednf(child, matcher).essential)
    return total


def test_ednf_terms_track_dependency_degree(benchmark, report):
    rows = [
        "   e   EDNF terms   (e+1)^n bound   full-DNF terms k^n   psafe time(ms)"
    ]
    term_counts = {}
    for e in E_SWEEP:
        query, spec = dependent_conjunction(N_CONJUNCTS, K_CONSTRAINTS, e, seed=0)
        matcher = spec.matcher()
        matcher.potential(query.constraints())
        terms = _ednf_term_product(query, matcher)
        term_counts[e] = terms
        elapsed = best_of(
            lambda: psafe(list(query.children), spec.matcher()), repeat=1
        ) * 1e3
        rows.append(
            f"{e:>4}   {terms:>10}   {(e + 1) ** N_CONJUNCTS:>13}   "
            f"{dnf_term_count(query):>18}   {elapsed:>13.2f}"
        )
    report(
        f"Section 8: safety-check terms vs dependency degree "
        f"(n={N_CONJUNCTS}, k={K_CONSTRAINTS})",
        rows,
    )
    # e = 0: the EDNF collapses to one all-ε term — virtually no cost.
    assert term_counts[0] == 1
    # Term count grows with e but stays far below the full-DNF k^n count.
    assert term_counts[4] > term_counts[1] > term_counts[0]
    assert term_counts[4] <= dnf_term_count(
        dependent_conjunction(N_CONJUNCTS, K_CONSTRAINTS, 4, seed=0)[0]
    )

    query, spec = dependent_conjunction(N_CONJUNCTS, K_CONSTRAINTS, 2, seed=0)
    benchmark(lambda: psafe(list(query.children), spec.matcher()))


def test_psafe_free_when_independent(benchmark, report):
    query, spec = dependent_conjunction(6, 5, 0, seed=1)
    result = benchmark(lambda: psafe(list(query.children), spec.matcher()))
    assert result.is_fully_separable
    report(
        "Section 8: e = 0 — PSafe is virtually free",
        [
            f"full-DNF disjunct count would be {dnf_term_count(query)}; "
            "EDNF checks a single all-ε term",
        ],
    )
