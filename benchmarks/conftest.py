"""Shared reporting machinery for the benchmark harness.

Every bench regenerates one table/figure/claim of the paper (see the
per-experiment index in DESIGN.md).  Besides the pytest-benchmark timing
table, each bench *records* the rows it reproduces; those records are

* printed in the terminal summary (so they survive pytest's capture), and
* written to ``benchmarks/results/<bench>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_RECORDS: list[tuple[str, list[str]]] = []


def record(title: str, lines: list[str]) -> None:
    """Register one reproduced artifact (a figure/table) for the summary."""
    _RECORDS.append((title, [str(line) for line in lines]))


@pytest.fixture()
def report():
    """Fixture handle on :func:`record` for benches."""
    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RECORDS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    tr = terminalreporter
    tr.section("reproduced paper artifacts")
    for title, lines in _RECORDS:
        tr.write_line("")
        tr.write_line(f"--- {title} ---")
        for line in lines:
            tr.write_line(line)
        slug = "".join(ch if ch.isalnum() else "_" for ch in title).strip("_")
        path = RESULTS_DIR / f"{slug[:60]}.txt"
        path.write_text("\n".join([title, *lines]) + "\n")
