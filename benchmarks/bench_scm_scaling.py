"""C1: Section 4.4's claim — SCM runs in time ~linear in N, P, R.

Sweeps the number of query constraints N (at fixed rule count) and the
number of rules R (at fixed N), timing Algorithm SCM including the rule
prematch.  The recorded table shows time growing roughly linearly — the
time-per-unit column should stay flat — while the quadratic M term stays
invisible because realistic matchings are sparse.  Each sweep also
writes a machine-readable ``BENCH_scm_scaling_*.json`` trajectory
(wall-clock plus the matcher's own work counters) via the obs harness.
"""

import pytest
from obs_harness import BenchRecorder, best_of, traced

from repro.core.scm import scm
from repro.workloads.generator import simple_conjunction, synthetic_spec, vocabulary

N_SWEEP = (4, 8, 16, 32, 64, 128)
R_SWEEP = (5, 10, 20, 40, 80)


def _spec_with_rules(r_count: int):
    attrs = vocabulary(r_count)
    return synthetic_spec([], singletons=attrs, name=f"K_{r_count}")


def test_scm_linear_in_n(benchmark, report):
    spec = _spec_with_rules(128)
    rows = ["   N    time(ms)   time/N (us)"]
    times = {}
    recorder = BenchRecorder("scm_scaling_n", "Section 4.4: SCM time vs N (R = 128)")
    for n in N_SWEEP:
        query = simple_conjunction(vocabulary(n), 0)
        elapsed = best_of(lambda q=query: scm(q, spec.matcher()))
        _, counters = traced(lambda q=query: scm(q, spec.matcher()))
        times[n] = elapsed
        rows.append(f"{n:>4}    {elapsed * 1e3:8.3f}   {elapsed / n * 1e6:10.2f}")
        recorder.add(
            n=n,
            seconds=elapsed,
            matchings=counters.get("matcher.matchings", 0),
            suppressed=counters.get("scm.submatchings_suppressed", 0),
        )
    recorder.write(rules=128)
    report("Section 4.4: SCM time vs N (R = 128 rules)", rows)
    # Shape check: doubling N should not cost anything near quadratic.
    assert times[128] < times[4] * (128 / 4) ** 1.7

    query = simple_conjunction(vocabulary(32), 0)
    benchmark(lambda: scm(query, spec.matcher()))


def test_scm_linear_in_r(benchmark, report):
    query = simple_conjunction(vocabulary(16), 0)
    rows = ["   R    time(ms)   time/R (us)"]
    times = {}
    recorder = BenchRecorder("scm_scaling_r", "Section 4.4: SCM time vs R (N = 16)")
    for r in R_SWEEP:
        spec = _spec_with_rules(r)
        elapsed = best_of(lambda s=spec: scm(query, s.matcher()))
        _, counters = traced(lambda s=spec: scm(query, s.matcher()))
        times[r] = elapsed
        rows.append(f"{r:>4}    {elapsed * 1e3:8.3f}   {elapsed / r * 1e6:10.2f}")
        recorder.add(
            r=r,
            seconds=elapsed,
            rules_tried=counters.get("matcher.rules_tried", 0),
            matchings=counters.get("matcher.matchings", 0),
        )
    recorder.write(constraints=16)
    report("Section 4.4: SCM time vs R (N = 16 constraints)", rows)
    assert times[80] < times[5] * (80 / 5) ** 1.7

    spec = _spec_with_rules(40)
    benchmark(lambda: scm(query, spec.matcher()))


@pytest.mark.parametrize("pairs", [0, 4, 8])
def test_scm_with_dependencies(benchmark, pairs):
    """The quadratic M term: pair rules add matchings without blowing up."""
    attrs = vocabulary(16)
    groups = [(attrs[2 * i], attrs[2 * i + 1]) for i in range(pairs // 2)]
    spec = synthetic_spec(groups, singletons=attrs, name=f"K_dep_{pairs}")
    query = simple_conjunction(attrs, 0)
    benchmark(lambda: scm(query, spec.matcher()))
