"""C1: Section 4.4's claim — SCM runs in time ~linear in N, P, R.

Sweeps the number of query constraints N (at fixed rule count) and the
number of rules R (at fixed N), timing Algorithm SCM including the rule
prematch.  The recorded table shows time growing roughly linearly — the
time-per-unit column should stay flat — while the quadratic M term stays
invisible because realistic matchings are sparse.  Each sweep also
writes a machine-readable ``BENCH_scm_scaling_*.json`` trajectory
(wall-clock plus the matcher's own work counters) via the obs harness.
"""

import pytest
from obs_harness import BenchRecorder, best_of, median_of, sweep, traced

from repro.core.matching import Matcher
from repro.core.scm import scm, scm_translate
from repro.workloads.generator import simple_conjunction, synthetic_spec, vocabulary

N_SWEEP = sweep((4, 8, 16, 32, 64, 128), quick=(4, 16, 64))
R_SWEEP = sweep((5, 10, 20, 40, 80), quick=(5, 20, 80))
INDEX_RULES = sweep((400,), quick=(200,))[0]


def _spec_with_rules(r_count: int):
    attrs = vocabulary(r_count)
    return synthetic_spec([], singletons=attrs, name=f"K_{r_count}")


def test_scm_linear_in_n(benchmark, report):
    spec = _spec_with_rules(128)
    rows = ["   N    time(ms)   time/N (us)"]
    times = {}
    recorder = BenchRecorder("scm_scaling_n", "Section 4.4: SCM time vs N (R = 128)")
    for n in N_SWEEP:
        query = simple_conjunction(vocabulary(n), 0)
        elapsed = best_of(lambda q=query: scm(q, spec.matcher()))
        _, counters = traced(lambda q=query: scm(q, spec.matcher()))
        times[n] = elapsed
        rows.append(f"{n:>4}    {elapsed * 1e3:8.3f}   {elapsed / n * 1e6:10.2f}")
        recorder.add(
            n=n,
            seconds=elapsed,
            matchings=counters.get("matcher.matchings", 0),
            suppressed=counters.get("scm.submatchings_suppressed", 0),
        )
    recorder.write(rules=128)
    report("Section 4.4: SCM time vs N (R = 128 rules)", rows)
    # Shape check: doubling N should not cost anything near quadratic.
    lo, hi = min(N_SWEEP), max(N_SWEEP)
    assert times[hi] < times[lo] * (hi / lo) ** 1.7

    query = simple_conjunction(vocabulary(32), 0)
    benchmark(lambda: scm(query, spec.matcher()))


def test_scm_linear_in_r(benchmark, report):
    query = simple_conjunction(vocabulary(16), 0)
    rows = ["   R    time(ms)   time/R (us)"]
    times = {}
    recorder = BenchRecorder("scm_scaling_r", "Section 4.4: SCM time vs R (N = 16)")
    for r in R_SWEEP:
        spec = _spec_with_rules(r)
        elapsed = best_of(lambda s=spec: scm(query, s.matcher()))
        _, counters = traced(lambda s=spec: scm(query, s.matcher()))
        times[r] = elapsed
        rows.append(f"{r:>4}    {elapsed * 1e3:8.3f}   {elapsed / r * 1e6:10.2f}")
        recorder.add(
            r=r,
            seconds=elapsed,
            rules_tried=counters.get("matcher.rules_tried", 0),
            matchings=counters.get("matcher.matchings", 0),
        )
    recorder.write(constraints=16)
    report("Section 4.4: SCM time vs R (N = 16 constraints)", rows)
    lo, hi = min(R_SWEEP), max(R_SWEEP)
    assert times[hi] < times[lo] * (hi / lo) ** 1.7

    spec = _spec_with_rules(40)
    benchmark(lambda: scm(query, spec.matcher()))


def test_indexed_vs_linear_dispatch(benchmark, report):
    """The compiled rule index: a wide library, a narrow query.

    A realistic worst case for the naive matcher — R singleton rules, a
    query touching 8 attributes — where ``_quick_compatible`` discards
    R - 8 rules one at a time.  The compiled index finds the same 8
    candidates from its inverted index; the mappings are bit-identical
    (asserted here, property-tested in tests/test_perf_properties.py)
    and the dispatch is required to be at least 2x faster.
    """
    spec = _spec_with_rules(INDEX_RULES)
    query = simple_conjunction(vocabulary(8), 0)
    index = spec.compiled_index()  # build outside the timed region

    # Fresh matcher per run: the prematch memo must not serve cached
    # matchings, or we would time dict lookups instead of dispatch.
    # ``interpret=True`` pins both sides to the interpreted rule walk so
    # this trajectory keeps measuring index dispatch alone — the
    # compiled-closure layer on top is gated by
    # test_compiled_vs_indexed_dispatch below.
    linear = median_of(lambda: scm(query, Matcher(spec.rules)), repeat=9)
    indexed = median_of(
        lambda: scm(query, Matcher(spec.rules, index=index, interpret=True)), repeat=9
    )
    speedup = linear / indexed

    assert scm(query, Matcher(spec.rules)) == scm(query, spec.matcher())

    _, lin_counters = traced(lambda: scm(query, Matcher(spec.rules)))
    _, idx_counters = traced(lambda: scm(query, spec.matcher()))
    recorder = BenchRecorder(
        "scm_index", f"Compiled rule index vs linear scan (R = {INDEX_RULES}, N = 8)"
    )
    recorder.add(
        rules=INDEX_RULES,
        n=8,
        linear_seconds=linear,
        indexed_seconds=indexed,
        speedup=round(speedup, 2),
        linear_rules_tried=lin_counters.get("matcher.rules_tried", 0),
        indexed_rules_tried=idx_counters.get("matcher.rules_tried", 0),
        rules_skipped=idx_counters.get("perf.index.rules_skipped", 0),
    )
    recorder.write()
    report(
        f"Compiled rule index vs linear scan (R = {INDEX_RULES}, N = 8)",
        [
            f"  linear  : {linear * 1e3:8.3f} ms  "
            f"({lin_counters.get('matcher.rules_tried', 0)} rules tried)",
            f"  indexed : {indexed * 1e3:8.3f} ms  "
            f"({idx_counters.get('matcher.rules_tried', 0)} rules tried)",
            f"  speedup : {speedup:.1f}x",
        ],
    )
    assert speedup >= 2.0, f"indexed dispatch only {speedup:.2f}x faster"

    benchmark(lambda: scm(query, Matcher(spec.rules, index=index, interpret=True)))


def test_compiled_vs_indexed_dispatch(benchmark, report):
    """repro.perf.compile: rule closures + prematch memo vs interpreted walk.

    Both sides dispatch through the same inverted index; the baseline
    walks the interpreted matcher (``interpret=True`` — the PR-3 path
    and the equivalence oracle) while the compiled side runs the rule
    closures with the index's persistent prematch memo warm, i.e. the
    steady state a serving worker reaches after its first request.
    Outputs must be bit-identical; the compiled path is required to be
    at least 2x faster (gated in CI against BENCH_compile.json).
    """
    spec = _spec_with_rules(INDEX_RULES)
    query = simple_conjunction(vocabulary(8), 0)
    index = spec.compiled_index()
    index.precompile()  # closures are built at load time, not in the timed region
    scm(query, Matcher(spec.rules, index=index))  # warm the prematch memo

    interpreted = median_of(
        lambda: scm(query, Matcher(spec.rules, index=index, interpret=True)), repeat=9
    )
    compiled = median_of(
        lambda: scm(query, Matcher(spec.rules, index=index)), repeat=9
    )
    speedup = interpreted / compiled

    # Bit-identity: the whole SCMResult (mapping, matchings, exactness).
    assert scm_translate(query, Matcher(spec.rules, index=index)) == scm_translate(
        query, Matcher(spec.rules, index=index, interpret=True)
    )

    _, cmp_counters = traced(lambda: scm(query, Matcher(spec.rules, index=index)))
    recorder = BenchRecorder(
        "compile",
        f"Compiled rule closures vs interpreted dispatch (R = {INDEX_RULES}, N = 8)",
    )
    recorder.add(
        rules=INDEX_RULES,
        n=8,
        interpreted_seconds=interpreted,
        compiled_seconds=compiled,
        compiled_speedup=round(speedup, 2),
        prematch_hits=cmp_counters.get("perf.compile.prematch.hits", 0),
    )
    recorder.write()
    report(
        f"Compiled rule closures vs interpreted dispatch (R = {INDEX_RULES}, N = 8)",
        [
            f"  interpreted : {interpreted * 1e3:8.3f} ms",
            f"  compiled    : {compiled * 1e3:8.3f} ms",
            f"  speedup     : {speedup:.1f}x",
        ],
    )
    assert speedup >= 2.0, f"compiled dispatch only {speedup:.2f}x faster"

    benchmark(lambda: scm(query, Matcher(spec.rules, index=index)))


@pytest.mark.parametrize("pairs", [0, 4, 8])
def test_scm_with_dependencies(benchmark, pairs):
    """The quadratic M term: pair rules add matchings without blowing up."""
    attrs = vocabulary(16)
    groups = [(attrs[2 * i], attrs[2 * i + 1]) for i in range(pairs // 2)]
    spec = synthetic_spec(groups, singletons=attrs, name=f"K_dep_{pairs}")
    query = simple_conjunction(attrs, 0)
    benchmark(lambda: scm(query, spec.matcher()))
