"""C2: Section 8's compactness claim — the TDQM/DNF size ratio grows ~2^n.

On the worst-compactness shape ``(a1 ∨ b1) ∧ ... ∧ (an ∨ bn)`` with fully
independent constraints, TDQM preserves the n-conjunct structure (output
linear in n) while the DNF baseline materializes 2^n disjuncts.  The
recorded table tracks the measured ratio against the paper's 2^n bound.
"""

import pytest

from repro.core.dnf_mapper import dnf_map
from repro.core.metrics import compactness_ratio
from repro.core.tdqm import tdqm
from repro.workloads.generator import chain_query, synthetic_spec, vocabulary

N_SWEEP = (2, 4, 6, 8, 10, 12)


def _spec(n: int):
    return synthetic_spec([], singletons=vocabulary(2 * n), name=f"K_chain_{n}")


def test_compactness_ratio_grows_exponentially(benchmark, report):
    rows = ["   n   TDQM nodes   DNF nodes      ratio        2^n"]
    ratios = {}
    for n in N_SWEEP:
        spec = _spec(n)
        query = chain_query(n)
        t = tdqm(query, spec)
        d = dnf_map(query, spec)
        ratio = compactness_ratio(d, t)
        ratios[n] = ratio
        rows.append(
            f"{n:>4}   {t.node_count():>10}   {d.node_count():>9}   "
            f"{ratio:>8.1f}   {2 ** n:>8}"
        )
    report("Section 8: compactness, TDQM vs DNF on (a∨b)^n", rows)
    # Shape: the ratio must grow superlinearly with n (exponential trend).
    assert ratios[12] > 8 * ratios[6]
    assert ratios[12] > 100

    spec = _spec(10)
    query = chain_query(10)
    benchmark(lambda: tdqm(query, spec))


@pytest.mark.parametrize("n", [6, 10])
def test_dnf_baseline_cost(benchmark, n):
    spec = _spec(n)
    query = chain_query(n)
    benchmark(lambda: dnf_map(query, spec))


def test_tdqm_output_linear_in_n(benchmark, report):
    rows = ["   n   TDQM nodes   nodes/n"]
    sizes = {}
    for n in N_SWEEP:
        t = tdqm(chain_query(n), _spec(n))
        sizes[n] = t.node_count()
        rows.append(f"{n:>4}   {t.node_count():>10}   {t.node_count() / n:>7.2f}")
    report("Section 8: TDQM output stays linear in n", rows)
    assert sizes[12] <= sizes[2] * 12  # linear, not exponential

    benchmark(lambda: tdqm(chain_query(12), _spec(12)))
