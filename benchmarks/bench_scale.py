"""Scale bench: the whole pipeline under a larger store and workload.

Not a paper figure — a sanity check that the implementation's costs stay
sane as data grows: translation cost is independent of store size, and
mediated answering stays proportional to the native result volume.
"""

import pytest

from repro.core.parser import parse_query
from repro.core.tdqm import tdqm
from repro.mediator import bookstore_mediator
from repro.rules import K_AMAZON
from repro.workloads.datasets import random_books

WORKLOAD = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    '([ln = "Clancy"] or [ln = "Klancy"] or [ln = "Smith"]) and [pyear = 1997]',
    "[ti contains java (near) jdk] and [pyear = 1997] and [pmonth = 5]",
    "[kwd contains www] or [kwd contains web]",
    '[publisher = "oreilly"] and [category = "D.3"]',
    "[pyear = 1996] or [pyear = 1997]",
    'not [ln = "Smith"] and [pyear = 1997]',
    '[id-no = "000000042X"]',
]


def test_translation_independent_of_store_size(benchmark, report):
    queries = [parse_query(text) for text in WORKLOAD]

    def translate_all():
        return [tdqm(q, K_AMAZON) for q in queries]

    benchmark(translate_all)
    report(
        "Scale: translation cost is data-independent",
        [f"{len(WORKLOAD)} queries translated; no store access involved"],
    )


@pytest.mark.parametrize("n_books", [100, 400, 1600])
def test_pipeline_scales_with_data(benchmark, report, n_books):
    mediator = bookstore_mediator("amazon", rows=random_books(n_books, seed=99))
    queries = [parse_query(text) for text in WORKLOAD]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark.pedantic(run, rounds=3, iterations=1)
    total = sum(len(a.rows) for a in answers)
    # Spot-check correctness at scale on a subset of the workload.
    for q in queries[:3]:
        assert mediator.check_equivalence(q)
    report(
        f"Scale: mediated pipeline at {n_books} books",
        [f"{len(WORKLOAD)} queries -> {total} result rows"],
    )
