"""F9/E8: the map source — safety vs precise separability
(DESIGN.md row F9/E8).

Regenerates Example 8's two pairings and Figure 9's subsumption picture:
the cheap safety test flags both pairings unsafe, the precise Theorem 3
test (with semantic subsumption over a coordinate grid) separates the
range pairing and rejects the mixed one.
"""

from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.safety import base_cross_matchings, is_safe_base, is_separable_base
from repro.core.scm import scm
from repro.core.subsume import empirical_subsumes
from repro.engine.eval import evaluate_row
from repro.engine.sources_builtin import MAP_SOURCE_VIRTUALS
from repro.mediator import map_mediator
from repro.rules import K_MAP
from repro.workloads.datasets import grid_points

F1 = parse_query("[x_min = 10]")
F2 = parse_query("[x_max = 30]")
F3 = parse_query("[y_min = 20]")
F4 = parse_query("[y_max = 40]")

GRID = grid_points(step=5, limit=60)


def _semantic_subsumes(broad, narrow):
    return empirical_subsumes(
        broad, narrow, GRID,
        lambda q, row: evaluate_row(q, row, MAP_SOURCE_VIRTUALS),
    )


def test_translation(benchmark, report):
    query = parse_query(
        "[x_min = 10] and [x_max = 30] and [y_min = 20] and [y_max = 40]"
    )
    mapping = benchmark(lambda: scm(query, K_MAP))
    report(
        "Example 8: rectangle translation",
        [f"Q = {to_text(query)}", f"S(Q) = {to_text(mapping)}"],
    )


def test_range_pairing_separable(benchmark, report):
    conjuncts = [frozenset({F1, F2}), frozenset({F3, F4})]
    matcher = K_MAP.matcher()

    def check():
        return (
            is_safe_base(conjuncts, matcher),
            is_separable_base(conjuncts, matcher, subsumes=_semantic_subsumes),
        )

    safe, separable = benchmark(check)
    assert not safe and separable
    delta = base_cross_matchings(conjuncts, matcher)
    report(
        "Example 8: (f1 f2)(f3 f4) — redundant cross-matchings",
        [
            f"safe (Def. 5) = {safe}   separable (Thm. 3) = {separable}",
            f"cross-matchings = {len(delta)} (both redundant via Eq. 6)",
        ],
    )


def test_mixed_pairing_inseparable(benchmark, report):
    conjuncts = [frozenset({F1, F4}), frozenset({F2, F3})]
    matcher = K_MAP.matcher()
    separable = benchmark(
        lambda: is_separable_base(conjuncts, matcher, subsumes=_semantic_subsumes)
    )
    assert not separable
    report(
        "Example 8: (f1 f4)(f2 f3) — essential cross-matchings",
        [f"separable (Thm. 3) = {separable} (S(Ci) are True; Eq. 6 fails)"],
    )


def test_figure9_subsumption_counts(benchmark, report):
    mediator = map_mediator(rows=GRID)
    source = mediator.sources["G"]

    def run():
        corner = source.select_rows("points", parse_query("[C_ll = (10, 20)]"))
        rect = source.select_rows(
            "points",
            parse_query("[X_range = (10:30)] and [Y_range = (20:40)]"),
        )
        return corner, rect

    corner, rect = benchmark(run)
    corner_ids = {r["id"] for r in corner}
    rect_ids = {r["id"] for r in rect}
    assert rect_ids <= corner_ids
    assert "p50_30" in corner_ids - rect_ids
    report(
        "Figure 9: g3 subsumes g1 g2",
        [
            f"|g3| = {len(corner_ids)} points   |g1 g2| = {len(rect_ids)} points",
            "witness (50, 30): in g3, not in g1 g2",
        ],
    )
