"""C5: end-to-end correctness — Eq. 1 ≡ Eq. 2 under load.

Runs the full mediation pipeline (translate -> execute natively ->
convert -> filter) on randomized bookstore and faculty datasets, timing
the mediated path and verifying it returns exactly the direct answer.
"""

import pytest

from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.mediator import bookstore_mediator, faculty_mediator
from repro.workloads.datasets import (
    random_books,
    random_papers_and_aubib,
    random_profs,
)

BOOK_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    "[ti contains java (near) jdk]",
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
]


@pytest.mark.parametrize("n_books", [50, 200])
def test_bookstore_pipeline(benchmark, report, n_books):
    mediator = bookstore_mediator("amazon", rows=random_books(n_books, seed=13))
    queries = [parse_query(text) for text in BOOK_QUERIES]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark(run)
    rows = []
    for query, answer in zip(queries, answers):
        direct = mediator.answer_direct(query)
        assert sorted(map(str, direct)) == sorted(map(str, answer.rows))
        rows.append(
            f"  {to_text(query)[:58]:<60} rows={len(answer.rows):>4}  "
            f"F={to_text(answer.plan.filter)[:40]}"
        )
    report(f"Eq.1 == Eq.2: Amazon bookstore, {n_books} books", rows)


def test_faculty_pipeline(benchmark, report):
    papers, aubib = random_papers_and_aubib(12, papers_per_author=3, seed=21)
    profs = random_profs(aubib, seed=22)
    mediator = faculty_mediator(papers=papers, aubib=aubib, prof=profs)
    queries = [
        parse_query(
            "[fac.ln = pub.ln] and [fac.fn = pub.fn] and "
            "[fac.bib contains data (near) mining] and [fac.dept = cs]"
        ),
        parse_query("[fac.dept = cs] or [fac.dept = ee]"),
        parse_query("[fac.bib contains data (and) mining]"),
    ]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark(run)
    rows = []
    for query, answer in zip(queries, answers):
        assert mediator.check_equivalence(query)
        rows.append(
            f"  {to_text(query)[:58]:<60} rows={len(answer.rows):>4}"
        )
    report("Eq.1 == Eq.2: faculty mediator (T1 + T2), randomized data", rows)
