"""C5: end-to-end correctness — Eq. 1 ≡ Eq. 2 under load.

Runs the full mediation pipeline (translate -> execute natively ->
convert -> filter) on randomized bookstore and faculty datasets, timing
the mediated path and verifying it returns exactly the direct answer.
Per-query wall-clock, rows, and pipeline counters (rows scanned/emitted
per source, post-filter selectivity) go to ``BENCH_mediator_*.json``.
"""

import pytest
from obs_harness import BenchRecorder, best_of, sweep, traced

from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.mediator import bookstore_mediator, faculty_mediator
from repro.workloads.datasets import (
    random_books,
    random_papers_and_aubib,
    random_profs,
)

BOOK_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    "[ti contains java (near) jdk]",
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
]


def _record_queries(recorder, mediator, queries):
    """One trajectory point per query: wall-clock + pipeline counters."""
    for query in queries:
        seconds = best_of(lambda q=query: mediator.answer_mediated(q), repeat=3)
        answer, counters = traced(lambda q=query: mediator.answer_mediated(q))
        candidates = counters.get("mediator.filter_candidates", 0)
        recorder.add(
            query=to_text(query),
            seconds=seconds,
            rows=len(answer.rows),
            rows_scanned=counters.get("source.rows_scanned", 0),
            rows_emitted=counters.get("source.rows_emitted", 0),
            filter_selectivity=(
                round(len(answer.rows) / candidates, 4) if candidates else None
            ),
        )


@pytest.mark.parametrize("n_books", sweep((50, 200), quick=(50,)))
def test_bookstore_pipeline(benchmark, report, n_books):
    mediator = bookstore_mediator("amazon", rows=random_books(n_books, seed=13))
    queries = [parse_query(text) for text in BOOK_QUERIES]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark(run)
    rows = []
    for query, answer in zip(queries, answers):
        direct = mediator.answer_direct(query)
        assert sorted(map(str, direct)) == sorted(map(str, answer.rows))
        rows.append(
            f"  {to_text(query)[:58]:<60} rows={len(answer.rows):>4}  "
            f"F={to_text(answer.plan.filter)[:40]}"
        )
    recorder = BenchRecorder(
        f"mediator_bookstore_{n_books}",
        f"Eq.1 == Eq.2: Amazon bookstore, {n_books} books",
    )
    _record_queries(recorder, mediator, queries)
    recorder.write(n_books=n_books)
    report(f"Eq.1 == Eq.2: Amazon bookstore, {n_books} books", rows)


def test_faculty_pipeline(benchmark, report):
    papers, aubib = random_papers_and_aubib(12, papers_per_author=3, seed=21)
    profs = random_profs(aubib, seed=22)
    mediator = faculty_mediator(papers=papers, aubib=aubib, prof=profs)
    queries = [
        parse_query(
            "[fac.ln = pub.ln] and [fac.fn = pub.fn] and "
            "[fac.bib contains data (near) mining] and [fac.dept = cs]"
        ),
        parse_query("[fac.dept = cs] or [fac.dept = ee]"),
        parse_query("[fac.bib contains data (and) mining]"),
    ]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark(run)
    rows = []
    for query, answer in zip(queries, answers):
        assert mediator.check_equivalence(query)
        rows.append(
            f"  {to_text(query)[:58]:<60} rows={len(answer.rows):>4}"
        )
    recorder = BenchRecorder(
        "mediator_faculty", "Eq.1 == Eq.2: faculty mediator (T1 + T2)"
    )
    _record_queries(recorder, mediator, queries)
    recorder.write()
    report("Eq.1 == Eq.2: faculty mediator (T1 + T2), randomized data", rows)
