"""F7/E6: Q̂_book — TDQM's top-down mapping vs the DNF baseline
(DESIGN.md row F7/E6).

Regenerates Figure 7's EDNF annotations and Example 6's walkthrough:
TDQM partitions {Č1} / {Č2, Č3}, rewrites only the dependent block, and
produces a mapping several times more compact than the blind DNF route.
"""

from repro.core.dnf_mapper import dnf_map_translate
from repro.core.ednf import ednf, format_terms
from repro.core.printer import render_tree, to_text
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import tdqm_translate
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import qbook


def _annotations(info, out):
    out[id(info.node)] = f"De = {format_terms(info.essential)}"
    for child in info.children:
        _annotations(child, out)
    return out


def test_qbook_tdqm(benchmark, report):
    query = qbook()
    result = benchmark(lambda: tdqm_translate(query, K_AMAZON))
    assert result.stats.blocks_rewritten == 1
    assert result.stats.psafe_calls == 1

    info = ednf(query, K_AMAZON.matcher())
    tree = render_tree(query, _annotations(info, {}))
    report(
        "Figure 7: Q_book with EDNF annotations",
        tree.splitlines()
        + [
            "",
            f"TDQM mapping ({result.mapping.node_count()} nodes): "
            f"{to_text(result.mapping)}",
            f"work: scm_calls={result.stats.scm_calls} "
            f"psafe_calls={result.stats.psafe_calls} "
            f"blocks_rewritten={result.stats.blocks_rewritten}",
        ],
    )


def test_qbook_dnf_baseline(benchmark, report):
    query = qbook()
    result = benchmark(lambda: dnf_map_translate(query, K_AMAZON))
    assert result.disjunct_count == 6
    report(
        "Example 6: DNF baseline on Q_book",
        [
            f"DNF mapping ({result.mapping.node_count()} nodes, "
            f"{result.disjunct_count} disjuncts, "
            f"{result.constraint_slots} constraint slots): "
            f"{to_text(result.mapping)}",
        ],
    )


def test_qbook_equivalence_and_compactness(benchmark, report):
    query = qbook()

    def both():
        t = tdqm_translate(query, K_AMAZON)
        d = dnf_map_translate(query, K_AMAZON)
        return t, d

    t, d = benchmark(both)
    assert prop_equivalent(t.mapping, d.mapping)
    ratio = d.mapping.node_count() / t.mapping.node_count()
    assert ratio > 2
    report(
        "Example 6: compactness comparison",
        [
            f"TDQM nodes = {t.mapping.node_count()}   "
            f"DNF nodes = {d.mapping.node_count()}   ratio = {ratio:.2f}x",
            "TDQM constraint slots = "
            f"{t.stats.constraint_slots} vs DNF = {d.constraint_slots} "
            "(repeated work on f_y, f_m in the disjuncts)",
        ],
    )
