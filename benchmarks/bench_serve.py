"""C8: the load-serving layer (repro.serve) under closed-loop client load.

The ROADMAP's serving story: many client threads against one shared
:class:`~repro.serve.MediationService` must beat the naive
one-translation-per-request handler, because the shared
:class:`~repro.perf.TranslationCache` and the single-flight table
collapse the (heavily repeated) paper workload into dict lookups.

This bench pins that claim with closed-loop workers — each worker fires
its next request the moment the previous one returns, the canonical
saturation model for a service:

* **served** — N workers round-robin the paper queries against one
  shared service (warm steady state);
* **uncached** — the same workers, schedule, and service machinery, but
  with the shared translation cache removed, so every request pays a
  full parse + TDQM translation, the way a cacheless handler would.
  Holding the serving layer constant isolates the variable under test:
  the shared cache, not the admission-control bookkeeping.

Gate: the shared-cache service must clear 2x over per-request
translation (in practice far more), with **zero lost or duplicated
responses** and exact cache accounting.  Results go to
``BENCH_serve.json`` for the CI regression gate.
"""

import itertools
import json
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from obs_harness import BenchRecorder, best_of, median_of, sweep

from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.mediator import bookstore_mediator
from repro.obs.metrics import MetricsRegistry, installed
from repro.obs.stats import builtin_mediator
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    MediationService,
    ServiceConfig,
    handle_line,
    serve_tcp,
)

#: The paper workload: Example 1/2 plus Qbook — the exact query mix an
#: Example-1 mediator serves, from trivial lookups to the partitioned
#: rewrite of Section 4 (the expensive one the cache amortizes).
BOOK_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
    # Qbook (Section 4): the partition {C1}, {C2, C3} rewrite.
    '(([ln = "Smith"] and [fn = "John"]) or [kwd contains www] or'
    ' [kwd contains web]) and [pyear = 1997] and'
    ' ([pmonth = 5] or [pmonth = 6])',
]


def _closed_loop(handler, n_workers: int, rounds: int) -> list[list]:
    """Run ``handler(text)`` from ``n_workers`` closed-loop client threads.

    Each worker issues its next request as soon as the previous response
    arrives; returns the per-worker response lists (for the lost/dup
    audit).
    """
    responses: list[list] = [[] for _ in range(n_workers)]
    barrier = threading.Barrier(n_workers)

    def worker(tid: int) -> None:
        barrier.wait()
        for round_ in range(rounds):
            text = BOOK_QUERIES[(tid + round_) % len(BOOK_QUERIES)]
            responses[tid].append(handler(text))

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        list(pool.map(worker, range(n_workers)))
    return responses


def test_serve_throughput(benchmark, report):
    """Shared-cache serving must beat per-request translation by 2x."""
    n_workers = sweep((8,), quick=(4,))[0]
    rounds = sweep((60,), quick=(25,))[0]
    total = n_workers * rounds

    config = ServiceConfig(max_concurrency=n_workers, queue_depth=total)
    mediator = bookstore_mediator("amazon")
    spec = mediator.specs["Amazon"]
    service = MediationService(mediator, config)

    # The control: identical service, shared cache removed — every
    # request re-runs the full translation pipeline.
    uncached_mediator = bookstore_mediator("amazon")
    uncached_mediator.translation_cache = None
    uncached = MediationService(uncached_mediator, config)

    # Warm-up: populate the cache and audit one full load for losses.
    audit = _closed_loop(service.translate, n_workers, rounds)
    assert all(len(per) == rounds for per in audit)  # zero lost responses
    serial = {
        text: tdqm_translate(parse_query(text), spec) for text in BOOK_QUERIES
    }
    for per_worker in audit:
        for served in per_worker:
            assert set(served) == {"Amazon"}  # zero cross-request bleed
    stats = service.stats()
    assert stats["requests"] == stats["completed"] == total
    assert stats["rejected"] == 0 and stats["errors"] == 0
    cache = stats["cache"]
    # Exact accounting: one lookup per non-coalesced request, no lost updates.
    assert cache["hits"] + cache["misses"] == stats["requests"] - stats["coalesced"]

    served_seconds = median_of(
        lambda: _closed_loop(service.translate, n_workers, rounds), repeat=5
    )
    uncached_seconds = median_of(
        lambda: _closed_loop(uncached.translate, n_workers, rounds), repeat=5
    )
    speedup = uncached_seconds / served_seconds

    # Bit-identity: the served mapping is exactly the serial pipeline's.
    for text in BOOK_QUERIES:
        assert service.translate(text)["Amazon"].mapping == serial[text].mapping

    recorder = BenchRecorder(
        "serve", "repro.serve: shared-cache service vs per-request translation"
    )
    recorder.add(
        workers=n_workers,
        requests=total,
        uncached_seconds=uncached_seconds,
        served_seconds=served_seconds,
        speedup=round(speedup, 2),
    )
    recorder.write()
    report(
        "repro.serve: closed-loop load, shared service vs cacheless handler",
        [
            f"  uncached : {uncached_seconds * 1e3:8.3f} ms  "
            f"({total} requests, {n_workers} workers)",
            f"  served   : {served_seconds * 1e3:8.3f} ms",
            f"  speedup  : {speedup:.1f}x",
            f"  coalesced: {stats['coalesced']}  "
            f"(cache hits {cache['hits']}, misses {cache['misses']})",
        ],
    )
    assert speedup >= 2.0, f"shared-cache service only {speedup:.2f}x faster"

    benchmark(lambda: _closed_loop(service.translate, n_workers, rounds))


def test_serve_telemetry_overhead(report):
    """Continuous telemetry must not tax the hot path beyond 5%.

    The metrics registry is fed by the same ``obs`` hooks the service
    already calls, so the marginal cost per request is a handful of
    lock-guarded dict updates.  This bench pins the contract from the
    observability docs: a registry-enabled service serves the warm
    closed-loop workload within 5% of the identical service with
    telemetry off.  Measurements interleave off/on pairs (best-of-N
    each) and the assertion takes the best of a few attempts, so a
    scheduler hiccup on a shared runner cannot fail the gate spuriously.
    """
    n_workers = sweep((8,), quick=(4,))[0]
    rounds = sweep((40,), quick=(20,))[0]
    config = ServiceConfig(max_concurrency=n_workers, queue_depth=n_workers * rounds)

    plain = MediationService(bookstore_mediator("amazon"), config)
    registry = MetricsRegistry()
    metered = MediationService(
        bookstore_mediator("amazon"), config, metrics=registry
    )

    # Warm both caches so the measured loops are the steady hot path.
    _closed_loop(plain.translate, n_workers, rounds)
    with installed(registry):
        _closed_loop(metered.translate, n_workers, rounds)

    attempts: list[tuple[float, float, float]] = []
    for _ in range(4):
        off_seconds = best_of(
            lambda: _closed_loop(plain.translate, n_workers, rounds), repeat=3
        )
        with installed(registry):
            on_seconds = best_of(
                lambda: _closed_loop(metered.translate, n_workers, rounds), repeat=3
            )
        attempts.append((on_seconds / off_seconds, off_seconds, on_seconds))
        if attempts[-1][0] <= 1.05:
            break
    ratio, off_seconds, on_seconds = min(attempts)

    # Guard against measuring a no-op: the registry really was fed.
    assert registry.counter_total("serve.requests") > 0
    assert registry.histogram("serve.translate.latency").count > 0

    recorder = BenchRecorder(
        "serve_telemetry", "repro.serve: telemetry-on vs telemetry-off hot path"
    )
    recorder.add(
        workers=n_workers,
        requests=n_workers * rounds,
        telemetry_off_seconds=off_seconds,
        telemetry_on_seconds=on_seconds,
        overhead_ratio=round(ratio, 4),
    )
    recorder.write()
    report(
        "repro.serve: continuous-telemetry overhead on the warm hot path",
        [
            f"  telemetry off: {off_seconds * 1e3:8.3f} ms",
            f"  telemetry on : {on_seconds * 1e3:8.3f} ms",
            f"  overhead     : {(ratio - 1) * 100:+.1f}%  (budget +5%)",
        ],
    )
    assert ratio <= 1.05, f"telemetry overhead {(ratio - 1) * 100:.1f}% exceeds 5%"


def test_serve_overload_rejection_is_fast(report):
    """An Overloaded rejection must cost microseconds, not a translation."""
    from repro.serve import Overloaded

    mediator = bookstore_mediator("amazon")
    service = MediationService(
        mediator, ServiceConfig(max_concurrency=1, queue_depth=0)
    )
    release = threading.Event()
    entered = threading.Event()
    real = mediator.answer_mediated

    def slow_answer(query, strict=None):
        entered.set()
        release.wait(timeout=30.0)
        return real(query, strict=strict)

    mediator.answer_mediated = slow_answer  # type: ignore[method-assign]
    occupant = threading.Thread(
        target=lambda: service.mediate(BOOK_QUERIES[0]), daemon=True
    )
    occupant.start()
    assert entered.wait(timeout=30.0)

    rejections = 0

    def reject_once():
        nonlocal rejections
        try:
            service.mediate(BOOK_QUERIES[1])
        except Overloaded:
            rejections += 1

    rejection_seconds = median_of(reject_once, repeat=20)
    release.set()
    occupant.join(timeout=30.0)
    assert rejections == 20  # every probe was shed, none queued
    report(
        "repro.serve: O(1) admission-control rejection",
        [f"  rejection: {rejection_seconds * 1e6:8.1f} us"],
    )
    # Shedding must be far cheaper than serving (sub-millisecond).
    assert rejection_seconds < 0.001

# ---------------------------------------------------------------------------
# Multi-process scaling: the sharded cluster vs one GIL-bound process
# ---------------------------------------------------------------------------


def _scaling_batch(tag: str, n_clients: int, rounds: int) -> list[list[str]]:
    """One batch of translation-heavy queries, unique per (client, round).

    Every query text is distinct (the ``tag`` keeps batches distinct
    across measurement runs too), so every request is a cache miss that
    pays a full partitioned TDQM translation in the worker.  That is the
    work process shards parallelize; a warm cache-hit workload would be
    a dict lookup per request and measure only front-end framing.
    """
    batch: list[list[str]] = []
    for cid in range(n_clients):
        queries = []
        for round_ in range(rounds):
            i = cid * rounds + round_
            queries.append(
                f'(([ln = "{tag}L{i}"] and [fn = "F{i}"]) or [kwd contains www]'
                ' or [kwd contains web]) and [pyear = 1997]'
                " and ([pmonth = 5] or [pmonth = 6])"
            )
        batch.append(queries)
    return batch


def _tcp_closed_loop(address, batch: list[list[str]]) -> list[list[str]]:
    """Closed-loop TCP clients against one JSON-lines server.

    Each client owns one connection and fires its next request the moment
    the previous response line arrives; returns per-client raw response
    lines (for the lost-response and bit-identity audits).
    """
    n_clients = len(batch)
    responses: list[list[str]] = [[] for _ in range(n_clients)]
    barrier = threading.Barrier(n_clients)

    def client(cid: int) -> None:
        with socket.create_connection(address, timeout=120.0) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            barrier.wait()
            for round_, text in enumerate(batch[cid]):
                handle.write(
                    json.dumps(
                        {"id": round_, "op": "translate", "query": text},
                        sort_keys=True,
                    )
                    + "\n"
                )
                handle.flush()
                responses[cid].append(handle.readline().rstrip("\n"))

    with ThreadPoolExecutor(max_workers=n_clients) as pool:
        list(pool.map(client, range(n_clients)))
    return responses


def _reference_responses(batch: list[list[str]]) -> dict[tuple[int, int], str]:
    """The bit-exact single-process response for every (client, round)."""
    service = MediationService(builtin_mediator({"K_Amazon"}), ServiceConfig())
    expected: dict[tuple[int, int], str] = {}
    for cid, queries in enumerate(batch):
        for round_, text in enumerate(queries):
            line = json.dumps(
                {"id": round_, "op": "translate", "query": text}, sort_keys=True
            )
            expected[(cid, round_)] = handle_line(service, line)
    return expected


def _audit(responses, expected, batch: list[list[str]]) -> None:
    """Zero lost responses; every byte identical to single-process."""
    assert all(len(per) == len(queries) for per, queries in zip(responses, batch))
    for cid, per_client in enumerate(responses):
        for round_, line in enumerate(per_client):
            assert line == expected[(cid, round_)], (cid, round_, line[:120])


def test_serve_cluster_scaling(report):
    """Shared-nothing process shards must scale past the GIL ceiling.

    One GIL-bound process serves the closed-loop TCP workload; the
    cluster shards the identical workload shape across worker processes
    by fingerprint.  Every query text is unique — each request pays a
    full TDQM translation, the work that shards parallelize — and each
    measurement run gets a fresh batch so the translation cache never
    converts the workload into dict lookups mid-sweep.  Correctness is
    asserted unconditionally — zero lost responses, byte-identical
    answers on the audited batch, exact aggregated stats — on any
    machine.  The throughput floors (>=1.7x at 2 workers, >=3x at 4)
    need real parallelism, so they are asserted only when the host has
    more cores than workers (a 1-core container cannot speed anything
    up by adding processes; the recorded trajectory still feeds the CI
    regression gate).
    """
    n_clients = sweep((16,), quick=(8,))[0]
    rounds = sweep((40,), quick=(15,))[0]
    worker_counts = sweep((2, 4), quick=(2,))
    repeat = sweep((5,), quick=(3,))[0]
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1

    batch_counter = itertools.count()

    def fresh_batch() -> list[list[str]]:
        return _scaling_batch(f"u{next(batch_counter)}", n_clients, rounds)

    service_config = ServiceConfig(
        max_concurrency=n_clients, queue_depth=n_clients * rounds
    )

    # Baseline: one process behind the same TCP framing.
    single = MediationService(builtin_mediator({"K_Amazon"}), service_config)
    server = serve_tcp(single, port=0)
    address = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        audit_batch = fresh_batch()
        _audit(
            _tcp_closed_loop(address, audit_batch),
            _reference_responses(audit_batch),
            audit_batch,
        )
        batches = iter([fresh_batch() for _ in range(repeat)])
        single_seconds = median_of(
            lambda: _tcp_closed_loop(address, next(batches)), repeat=repeat
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=30.0)

    recorder = BenchRecorder(
        "serve_cluster",
        "repro.serve.cluster: process shards vs one GIL-bound process",
    )
    lines = [
        f"  single   : {single_seconds * 1e3:8.3f} ms  "
        f"({n_clients * rounds} requests, {n_clients} clients, {cores} cores)"
    ]

    for workers in worker_counts:
        config = ClusterConfig(
            spec_names=("K_Amazon",),
            processes=workers,
            service=service_config,
            snapshot_interval=0.0,
        )
        with ClusterServer(config) as cluster:
            audit_batch = fresh_batch()
            _audit(
                _tcp_closed_loop(cluster.address, audit_batch),
                _reference_responses(audit_batch),
                audit_batch,
            )
            batches = iter([fresh_batch() for _ in range(repeat)])
            cluster_seconds = median_of(
                lambda: _tcp_closed_loop(cluster.address, next(batches)),
                repeat=repeat,
            )
            # Exact aggregated accounting: every translate line landed on
            # exactly one shard and was counted exactly once.
            with socket.create_connection(cluster.address, timeout=30.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")
                handle.write(json.dumps({"op": "stats"}) + "\n")
                handle.flush()
                stats = json.loads(handle.readline())["stats"]
        issued = n_clients * rounds * (1 + repeat)
        assert stats["requests"] == issued, (stats["requests"], issued)
        shard_requests = [
            entry["stats"]["requests"]
            for entry in stats["shards"]
            if "stats" in entry
        ]
        assert sum(shard_requests) == issued
        assert stats["errors"] == 0 and stats["rejected"] == 0
        assert stats["frontend"]["worker_deaths"] == 0

        speedup = single_seconds / cluster_seconds
        recorder.add(
            **{
                "workers": workers,
                "clients": n_clients,
                "requests": n_clients * rounds,
                "cores": cores,
                "single_seconds": single_seconds,
                "cluster_seconds": cluster_seconds,
                f"cluster{workers}_speedup": round(speedup, 2),
            }
        )
        lines.append(
            f"  {workers} workers: {cluster_seconds * 1e3:8.3f} ms  "
            f"(speedup {speedup:.2f}x)"
        )
        floor = {2: 1.7, 4: 3.0}.get(workers)
        if floor is not None and cores > workers:
            assert speedup >= floor, (
                f"{workers}-worker cluster only {speedup:.2f}x over one process "
                f"(floor {floor}x on {cores} cores)"
            )
        elif floor is not None:
            lines.append(
                f"             (floor {floor}x not asserted: {cores} core(s))"
            )

    recorder.write()
    report("repro.serve.cluster: multi-process scaling sweep", lines)
