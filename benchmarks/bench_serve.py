"""C8: the load-serving layer (repro.serve) under closed-loop client load.

The ROADMAP's serving story: many client threads against one shared
:class:`~repro.serve.MediationService` must beat the naive
one-translation-per-request handler, because the shared
:class:`~repro.perf.TranslationCache` and the single-flight table
collapse the (heavily repeated) paper workload into dict lookups.

This bench pins that claim with closed-loop workers — each worker fires
its next request the moment the previous one returns, the canonical
saturation model for a service:

* **served** — N workers round-robin the paper queries against one
  shared service (warm steady state);
* **uncached** — the same workers, schedule, and service machinery, but
  with the shared translation cache removed, so every request pays a
  full parse + TDQM translation, the way a cacheless handler would.
  Holding the serving layer constant isolates the variable under test:
  the shared cache, not the admission-control bookkeeping.

Gate: the shared-cache service must clear 2x over per-request
translation (in practice far more), with **zero lost or duplicated
responses** and exact cache accounting.  Results go to
``BENCH_serve.json`` for the CI regression gate.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from obs_harness import BenchRecorder, best_of, median_of, sweep

from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.mediator import bookstore_mediator
from repro.obs.metrics import MetricsRegistry, installed
from repro.serve import MediationService, ServiceConfig

#: The paper workload: Example 1/2 plus Qbook — the exact query mix an
#: Example-1 mediator serves, from trivial lookups to the partitioned
#: rewrite of Section 4 (the expensive one the cache amortizes).
BOOK_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and [pyear = 1997]',
    # Qbook (Section 4): the partition {C1}, {C2, C3} rewrite.
    '(([ln = "Smith"] and [fn = "John"]) or [kwd contains www] or'
    ' [kwd contains web]) and [pyear = 1997] and'
    ' ([pmonth = 5] or [pmonth = 6])',
]


def _closed_loop(handler, n_workers: int, rounds: int) -> list[list]:
    """Run ``handler(text)`` from ``n_workers`` closed-loop client threads.

    Each worker issues its next request as soon as the previous response
    arrives; returns the per-worker response lists (for the lost/dup
    audit).
    """
    responses: list[list] = [[] for _ in range(n_workers)]
    barrier = threading.Barrier(n_workers)

    def worker(tid: int) -> None:
        barrier.wait()
        for round_ in range(rounds):
            text = BOOK_QUERIES[(tid + round_) % len(BOOK_QUERIES)]
            responses[tid].append(handler(text))

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        list(pool.map(worker, range(n_workers)))
    return responses


def test_serve_throughput(benchmark, report):
    """Shared-cache serving must beat per-request translation by 2x."""
    n_workers = sweep((8,), quick=(4,))[0]
    rounds = sweep((60,), quick=(25,))[0]
    total = n_workers * rounds

    config = ServiceConfig(max_concurrency=n_workers, queue_depth=total)
    mediator = bookstore_mediator("amazon")
    spec = mediator.specs["Amazon"]
    service = MediationService(mediator, config)

    # The control: identical service, shared cache removed — every
    # request re-runs the full translation pipeline.
    uncached_mediator = bookstore_mediator("amazon")
    uncached_mediator.translation_cache = None
    uncached = MediationService(uncached_mediator, config)

    # Warm-up: populate the cache and audit one full load for losses.
    audit = _closed_loop(service.translate, n_workers, rounds)
    assert all(len(per) == rounds for per in audit)  # zero lost responses
    serial = {
        text: tdqm_translate(parse_query(text), spec) for text in BOOK_QUERIES
    }
    for per_worker in audit:
        for served in per_worker:
            assert set(served) == {"Amazon"}  # zero cross-request bleed
    stats = service.stats()
    assert stats["requests"] == stats["completed"] == total
    assert stats["rejected"] == 0 and stats["errors"] == 0
    cache = stats["cache"]
    # Exact accounting: one lookup per non-coalesced request, no lost updates.
    assert cache["hits"] + cache["misses"] == stats["requests"] - stats["coalesced"]

    served_seconds = median_of(
        lambda: _closed_loop(service.translate, n_workers, rounds), repeat=5
    )
    uncached_seconds = median_of(
        lambda: _closed_loop(uncached.translate, n_workers, rounds), repeat=5
    )
    speedup = uncached_seconds / served_seconds

    # Bit-identity: the served mapping is exactly the serial pipeline's.
    for text in BOOK_QUERIES:
        assert service.translate(text)["Amazon"].mapping == serial[text].mapping

    recorder = BenchRecorder(
        "serve", "repro.serve: shared-cache service vs per-request translation"
    )
    recorder.add(
        workers=n_workers,
        requests=total,
        uncached_seconds=uncached_seconds,
        served_seconds=served_seconds,
        speedup=round(speedup, 2),
    )
    recorder.write()
    report(
        "repro.serve: closed-loop load, shared service vs cacheless handler",
        [
            f"  uncached : {uncached_seconds * 1e3:8.3f} ms  "
            f"({total} requests, {n_workers} workers)",
            f"  served   : {served_seconds * 1e3:8.3f} ms",
            f"  speedup  : {speedup:.1f}x",
            f"  coalesced: {stats['coalesced']}  "
            f"(cache hits {cache['hits']}, misses {cache['misses']})",
        ],
    )
    assert speedup >= 2.0, f"shared-cache service only {speedup:.2f}x faster"

    benchmark(lambda: _closed_loop(service.translate, n_workers, rounds))


def test_serve_telemetry_overhead(report):
    """Continuous telemetry must not tax the hot path beyond 5%.

    The metrics registry is fed by the same ``obs`` hooks the service
    already calls, so the marginal cost per request is a handful of
    lock-guarded dict updates.  This bench pins the contract from the
    observability docs: a registry-enabled service serves the warm
    closed-loop workload within 5% of the identical service with
    telemetry off.  Measurements interleave off/on pairs (best-of-N
    each) and the assertion takes the best of a few attempts, so a
    scheduler hiccup on a shared runner cannot fail the gate spuriously.
    """
    n_workers = sweep((8,), quick=(4,))[0]
    rounds = sweep((40,), quick=(20,))[0]
    config = ServiceConfig(max_concurrency=n_workers, queue_depth=n_workers * rounds)

    plain = MediationService(bookstore_mediator("amazon"), config)
    registry = MetricsRegistry()
    metered = MediationService(
        bookstore_mediator("amazon"), config, metrics=registry
    )

    # Warm both caches so the measured loops are the steady hot path.
    _closed_loop(plain.translate, n_workers, rounds)
    with installed(registry):
        _closed_loop(metered.translate, n_workers, rounds)

    attempts: list[tuple[float, float, float]] = []
    for _ in range(4):
        off_seconds = best_of(
            lambda: _closed_loop(plain.translate, n_workers, rounds), repeat=3
        )
        with installed(registry):
            on_seconds = best_of(
                lambda: _closed_loop(metered.translate, n_workers, rounds), repeat=3
            )
        attempts.append((on_seconds / off_seconds, off_seconds, on_seconds))
        if attempts[-1][0] <= 1.05:
            break
    ratio, off_seconds, on_seconds = min(attempts)

    # Guard against measuring a no-op: the registry really was fed.
    assert registry.counter_total("serve.requests") > 0
    assert registry.histogram("serve.translate.latency").count > 0

    recorder = BenchRecorder(
        "serve_telemetry", "repro.serve: telemetry-on vs telemetry-off hot path"
    )
    recorder.add(
        workers=n_workers,
        requests=n_workers * rounds,
        telemetry_off_seconds=off_seconds,
        telemetry_on_seconds=on_seconds,
        overhead_ratio=round(ratio, 4),
    )
    recorder.write()
    report(
        "repro.serve: continuous-telemetry overhead on the warm hot path",
        [
            f"  telemetry off: {off_seconds * 1e3:8.3f} ms",
            f"  telemetry on : {on_seconds * 1e3:8.3f} ms",
            f"  overhead     : {(ratio - 1) * 100:+.1f}%  (budget +5%)",
        ],
    )
    assert ratio <= 1.05, f"telemetry overhead {(ratio - 1) * 100:.1f}% exceeds 5%"


def test_serve_overload_rejection_is_fast(report):
    """An Overloaded rejection must cost microseconds, not a translation."""
    from repro.serve import Overloaded

    mediator = bookstore_mediator("amazon")
    service = MediationService(
        mediator, ServiceConfig(max_concurrency=1, queue_depth=0)
    )
    release = threading.Event()
    entered = threading.Event()
    real = mediator.answer_mediated

    def slow_answer(query, strict=None):
        entered.set()
        release.wait(timeout=30.0)
        return real(query, strict=strict)

    mediator.answer_mediated = slow_answer  # type: ignore[method-assign]
    occupant = threading.Thread(
        target=lambda: service.mediate(BOOK_QUERIES[0]), daemon=True
    )
    occupant.start()
    assert entered.wait(timeout=30.0)

    rejections = 0

    def reject_once():
        nonlocal rejections
        try:
            service.mediate(BOOK_QUERIES[1])
        except Overloaded:
            rejections += 1

    rejection_seconds = median_of(reject_once, repeat=20)
    release.set()
    occupant.join(timeout=30.0)
    assert rejections == 20  # every probe was shed, none queued
    report(
        "repro.serve: O(1) admission-control rejection",
        [f"  rejection: {rejection_seconds * 1e6:8.1f} us"],
    )
    # Shedding must be far cheaper than serving (sub-millisecond).
    assert rejection_seconds < 0.001
