"""Resilient mediation: concurrent fan-out vs serial under latency spikes.

A federated plan touches every mapped source; when one of them stalls,
a serial loop pays the sum of the stalls while the thread-pool fan-out
in :meth:`Mediator.answer_mediated` pays only the worst one.  This
bench pins ISSUE 4's acceptance criterion — on a three-source
federation where *every* source takes a deterministic latency spike
(:meth:`FaultPolicy.latency_spike`, real sleeps), the concurrent
fan-out must beat the serial fan-out by at least 2x — and records a
degradation curve: answer latency as the number of spiked sources
grows stays pinned to the worst single source, not the sum.

Results go to ``BENCH_resilience.json``; the CI gate watches the raw
latencies and the recorded speedup.
"""

from obs_harness import BenchRecorder, median_of, sweep

from repro.core.ast import C, conj
from repro.mediator import synthetic_federation
from repro.resilience import FaultPolicy, ResilienceConfig, RetryPolicy

N_SOURCES = 3

#: One row per source (value 2 exists in every S_i), so the federated
#: cross product is non-empty and every source is actually consulted.
QUERY = conj([C(f"v{i}.a{i}", "=", 2) for i in range(N_SOURCES)])


def _spiked_config(max_workers, spike: float, spiked: int = N_SOURCES):
    """Resilience config where the first ``spiked`` sources sleep ``spike``s."""
    return ResilienceConfig(
        retry=RetryPolicy(retries=0, jitter=0.0),
        max_workers=max_workers,
        fault_policies={
            f"S{i}": FaultPolicy.latency_spike(spike) for i in range(spiked)
        },
    )


def test_concurrent_fanout_speedup(benchmark, report):
    """Concurrent fan-out must beat serial >= 2x when all sources stall."""
    spike = sweep((0.04,), quick=(0.02,))[0]
    serial = synthetic_federation(resilience=_spiked_config(1, spike))
    concurrent = synthetic_federation(resilience=_spiked_config(None, spike))

    # Same rows, both complete — resilience never changes the answer.
    serial_answer = serial.answer_mediated(QUERY)
    concurrent_answer = concurrent.answer_mediated(QUERY)
    assert serial_answer.complete and concurrent_answer.complete
    assert sorted(serial_answer.rows) == sorted(concurrent_answer.rows)

    serial_seconds = median_of(lambda: serial.answer_mediated(QUERY), repeat=5)
    concurrent_seconds = median_of(
        lambda: concurrent.answer_mediated(QUERY), repeat=5
    )
    speedup = serial_seconds / concurrent_seconds

    recorder = BenchRecorder(
        "resilience", "repro.resilience: concurrent fan-out vs serial"
    )
    recorder.add(
        sources=N_SOURCES,
        spike_seconds=spike,
        serial_seconds=serial_seconds,
        concurrent_seconds=concurrent_seconds,
        speedup=round(speedup, 2),
    )
    recorder.write()
    report(
        "repro.resilience: concurrent fan-out vs serial",
        [
            f"  spike      : {spike * 1e3:8.3f} ms per source "
            f"({N_SOURCES} sources)",
            f"  serial     : {serial_seconds * 1e3:8.3f} ms",
            f"  concurrent : {concurrent_seconds * 1e3:8.3f} ms",
            f"  speedup    : {speedup:.1f}x",
        ],
    )
    assert speedup >= 2.0, f"concurrent fan-out only {speedup:.2f}x faster"

    benchmark(lambda: concurrent.answer_mediated(QUERY))


def test_degradation_curve(report):
    """Fan-out latency tracks the *worst* source, not the sum of them.

    With k of the three sources spiked, the serial loop degrades
    linearly in k while the concurrent fan-out stays flat at one spike
    — graceful degradation under partially slow federations.
    """
    spike = sweep((0.04,), quick=(0.02,))[0]
    recorder = BenchRecorder(
        "resilience_degradation",
        "repro.resilience: latency vs number of slow sources",
    )
    lines = []
    flat = []
    for spiked in range(N_SOURCES + 1):
        mediator = synthetic_federation(
            resilience=_spiked_config(None, spike, spiked=spiked)
        )
        answer = mediator.answer_mediated(QUERY)
        assert answer.complete
        seconds = median_of(lambda: mediator.answer_mediated(QUERY), repeat=3)
        flat.append(seconds)
        recorder.add(
            slow_sources=spiked, spike_seconds=spike, answer_seconds=seconds
        )
        lines.append(
            f"  {spiked} slow source(s): {seconds * 1e3:8.3f} ms"
        )
    recorder.write()
    report("repro.resilience: latency vs number of slow sources", lines)
    # Flat curve: three slow sources must not cost ~3x one slow source.
    assert flat[3] < 2.0 * flat[1], (
        f"fan-out degraded linearly: 1 slow={flat[1]:.4f}s 3 slow={flat[3]:.4f}s"
    )
