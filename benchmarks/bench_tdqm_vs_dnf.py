"""C4: Section 5's claim — blind DNF conversion is exponential; TDQM
converts locally and only when necessary.

Times both algorithms on growing independent chain queries (DNF explodes,
TDQM stays flat) and on random trees with moderate dependencies (both
correct; TDQM cheaper and more compact).  The chain sweep writes a
``BENCH_tdqm_vs_dnf.json`` trajectory pairing wall-clock with the
algorithms' own work counters (Disjunctivize calls vs DNF terms).
"""

import pytest
from obs_harness import BenchRecorder, best_of, sweep, traced

from repro.core.dnf_mapper import dnf_map
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import tdqm
from repro.workloads.generator import (
    chain_query,
    random_query,
    random_spec,
    synthetic_spec,
    theory_equivalent,
    vocabulary,
)


def test_wall_clock_crossover(benchmark, report):
    rows = ["   n   TDQM (ms)   DNF (ms)   DNF/TDQM"]
    speedups = {}
    recorder = BenchRecorder(
        "tdqm_vs_dnf", "Section 5: wall-clock, TDQM vs Algorithm DNF on (a∨b)^n"
    )
    ns = sweep((4, 6, 8, 10, 12), quick=(4, 8, 12))
    for n in ns:
        spec = synthetic_spec([], singletons=vocabulary(2 * n), name=f"K_{n}")
        query = chain_query(n)
        t_time = best_of(lambda: tdqm(query, spec.matcher()), repeat=3)
        d_time = best_of(lambda: dnf_map(query, spec.matcher()), repeat=3)
        _, t_counters = traced(lambda: tdqm(query, spec.matcher()))
        _, d_counters = traced(lambda: dnf_map(query, spec.matcher()))
        speedups[n] = d_time / t_time
        rows.append(
            f"{n:>4}   {t_time * 1e3:>8.2f}   {d_time * 1e3:>8.2f}   "
            f"{d_time / t_time:>8.1f}x"
        )
        recorder.add(
            n=n,
            tdqm_seconds=t_time,
            dnf_seconds=d_time,
            disjunctivize_calls=t_counters.get("tdqm.disjunctivize_calls", 0),
            tdqm_scm_calls=t_counters.get("scm.calls", 0),
            dnf_terms=d_counters.get("dnf.terms", 0),
            dnf_scm_calls=d_counters.get("scm.calls", 0),
        )
    recorder.write()
    report("Section 5: wall-clock, TDQM vs Algorithm DNF on (a∨b)^n", rows)
    # The gap must widen with n.
    assert speedups[max(ns)] > speedups[min(ns)]

    spec = synthetic_spec([], singletons=vocabulary(20), name="K_b")
    query = chain_query(10)
    benchmark(lambda: tdqm(query, spec.matcher()))


@pytest.mark.parametrize("pairs", [0, 3])
def test_random_trees_agree(benchmark, report, pairs):
    attrs = vocabulary(8)
    spec = random_spec(attrs, pairs, seed=11)
    queries = [
        random_query(attrs, seed=s, n_constraints=8, max_depth=4) for s in range(10)
    ]

    def run():
        return [tdqm(q, spec.matcher()) for q in queries]

    mapped = benchmark(run)
    mismatches = 0
    for q, t in zip(queries, mapped):
        d = dnf_map(q, spec.matcher())
        if not theory_equivalent(t, d):
            mismatches += 1
    assert mismatches == 0
    report(
        f"Section 5/6: random trees (pairs={pairs}) — TDQM == DNF",
        [f"10/10 random queries agree with the DNF baseline"],
    )
