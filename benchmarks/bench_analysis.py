"""C7: consolidation candidate pairing must scale sub-quadratically.

The federation audit's consolidation pass compares rules pairwise, which
is O(R^2) done naively — hopeless on 10k-rule libraries.  Instead,
:func:`repro.analysis.consolidate.candidate_pairs` buckets rules by the
head signatures the compiled index already maintains and only examines
same-bucket pairs; two rules whose heads bind different (attr, op, view)
shapes can never be duplicates, so the pruning is lossless.

Two gates pin the claim:

* the indexed pairing returns *exactly* the pairs the all-pairs scan
  returns, at least 5x faster, on a 2k-rule library with planted
  duplicates and decoys (``BENCH_analysis_pairing.json``);
* the examined-pair count stays equal to the planted collision count —
  i.e. linear in R, not quadratic — all the way to 10k rules, and the
  end-to-end consolidation proposes exactly the planted duplicates,
  every proposal machine-verified (``BENCH_analysis_scale.json``).
"""

from obs_harness import BenchRecorder, median_of, sweep

from repro.analysis import candidate_pairs, consolidate_spec
from repro.workloads.generator import consolidation_workload


def test_indexed_pairing_speedup(benchmark, report):
    """Indexed pairing: identical output, >=5x faster than all-pairs."""
    n = sweep((2000,), quick=(600,))[0]
    spec, duplicates, decoys = consolidation_workload(
        n, duplicate_every=50, decoy_every=97
    )

    pairs_indexed, stats_indexed = candidate_pairs(spec)
    pairs_all, stats_all = candidate_pairs(spec, all_pairs=True)
    assert pairs_indexed == pairs_all, "pruning must be lossless"
    assert len(pairs_indexed) == len(duplicates) + len(decoys)
    assert stats_indexed.pairs_examined == len(duplicates) + len(decoys)
    assert stats_all.pairs_examined == stats_all.pairs_possible

    indexed_seconds = median_of(lambda: candidate_pairs(spec), repeat=5)
    all_pairs_seconds = median_of(
        lambda: candidate_pairs(spec, all_pairs=True), repeat=5
    )
    speedup = all_pairs_seconds / indexed_seconds

    recorder = BenchRecorder(
        "analysis_pairing",
        "repro.analysis: indexed candidate pairing vs all-pairs",
    )
    recorder.add(
        rules=len(spec.rules),
        planted=len(duplicates) + len(decoys),
        pairs_examined=stats_indexed.pairs_examined,
        pairs_possible=stats_indexed.pairs_possible,
        pruning_factor=round(stats_indexed.pruning_factor, 1),
        indexed_seconds=indexed_seconds,
        all_pairs_seconds=all_pairs_seconds,
        pairing_speedup=round(speedup, 2),
    )
    recorder.write()
    report(
        "repro.analysis: indexed candidate pairing vs all-pairs",
        [
            f"  rules    : {len(spec.rules)}  "
            f"({len(duplicates)} duplicates, {len(decoys)} decoys planted)",
            f"  indexed  : {indexed_seconds * 1e3:8.3f} ms  "
            f"({stats_indexed.pairs_examined} pairs examined)",
            f"  all-pairs: {all_pairs_seconds * 1e3:8.3f} ms  "
            f"({stats_all.pairs_examined} pairs examined)",
            f"  speedup  : {speedup:.1f}x  "
            f"(pruning {stats_indexed.pruning_factor:.0f}x)",
        ],
    )
    assert speedup >= 5.0, f"indexed pairing only {speedup:.2f}x faster"

    benchmark(lambda: candidate_pairs(spec))


def test_consolidation_scales_to_10k(report):
    """Examined pairs stay linear to 10k rules; proposals are exact.

    The work metric (pairs examined) is what must not blow up — wall
    clock at 10k is dominated by building the synthetic spec itself.  At
    every size the end-to-end pass must propose dropping exactly the
    planted duplicates (each proposal verified) and never touch a decoy.
    """
    sizes = sweep((1000, 4000, 10000), quick=(1000, 3000))
    recorder = BenchRecorder(
        "analysis_scale",
        "repro.analysis: consolidation work growth to 10k rules",
    )
    lines = []
    for n in sizes:
        spec, duplicates, decoys = consolidation_workload(
            n, duplicate_every=50, decoy_every=97
        )
        seconds = median_of(lambda: consolidate_spec(spec), repeat=3)
        result = consolidate_spec(spec)
        planted = len(duplicates) + len(decoys)
        assert result.stats.pairs_examined == planted, (
            f"n={n}: examined {result.stats.pairs_examined} pairs, "
            f"expected the {planted} planted collisions"
        )
        assert result.stats.pairs_examined * 5 <= result.stats.pairs_possible
        assert sorted(p.drop for p in result.proposals) == sorted(duplicates)
        assert all(p.verified for p in result.proposals)
        recorder.add(
            rules=len(spec.rules),
            planted=planted,
            proposals=len(result.proposals),
            pairs_examined=result.stats.pairs_examined,
            pairs_possible=result.stats.pairs_possible,
            pruning_factor=round(result.stats.pruning_factor, 1),
            consolidate_seconds=seconds,
        )
        lines.append(
            f"  R={len(spec.rules):>6}: {seconds * 1e3:8.3f} ms, "
            f"{result.stats.pairs_examined} of "
            f"{result.stats.pairs_possible} pairs examined "
            f"({result.stats.pruning_factor:.0f}x pruning), "
            f"{len(result.proposals)} verified proposals"
        )
    recorder.write()
    report("repro.analysis: consolidation work growth to 10k rules", lines)
