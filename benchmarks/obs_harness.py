"""Shared timing + machine-readable trajectory harness for the benches.

Replaces the copy-pasted ``time.perf_counter()`` loops: every bench gets

* :func:`best_of` — best-of-N wall-clock timing of a callable;
* :func:`traced` — run a callable under a fresh tracer and return its
  result together with the aggregate counter set (so benches can record
  *algorithm* work — matchings, Disjunctivize calls, rows scanned — next
  to wall-clock numbers);
* :class:`BenchRecorder` — accumulates measurement points and writes a
  machine-readable ``benchmarks/results/BENCH_<slug>.json`` trajectory,
  the artifact regression tooling diffs across commits.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from repro.obs import tracing

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

__all__ = ["RESULTS_DIR", "best_of", "traced", "BenchRecorder"]


def best_of(fn, repeat: int = 5) -> float:
    """Best (minimum) wall-clock seconds of ``fn()`` over ``repeat`` runs."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def traced(fn):
    """Run ``fn()`` under a fresh tracer; return ``(result, counters)``."""
    with tracing("bench") as tracer:
        result = fn()
    return result, dict(sorted(tracer.counters.items()))


class BenchRecorder:
    """Accumulates measurement points for one ``BENCH_<slug>.json`` file."""

    def __init__(self, slug: str, title: str):
        self.slug = slug
        self.title = title
        self.points: list[dict] = []

    def add(self, **point) -> None:
        """Record one measurement point (arbitrary JSON-compatible fields)."""
        self.points.append(point)

    def write(self, **extra) -> pathlib.Path:
        """Write the trajectory to ``results/BENCH_<slug>.json``."""
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "bench": self.slug,
            "title": self.title,
            "python": platform.python_version(),
            "points": self.points,
        }
        payload.update(extra)
        path = RESULTS_DIR / f"BENCH_{self.slug}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path
