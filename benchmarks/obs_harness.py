"""Shared timing + machine-readable trajectory harness for the benches.

Replaces the copy-pasted ``time.perf_counter()`` loops: every bench gets

* :func:`best_of` — best-of-N wall-clock timing of a callable;
* :func:`median_of` — median-of-N wall-clock timing (the statistic the
  CI regression gate compares, because medians are stable on shared
  runners where minima and means are not);
* :func:`quick_mode` / :func:`sweep` — honor ``REPRO_BENCH_QUICK=1``
  (set by the CI bench job) by trimming sweeps to a pinned subset so the
  job finishes in seconds while measuring the same code paths;
* :func:`traced` — run a callable under a fresh tracer and return its
  result together with the aggregate counter set (so benches can record
  *algorithm* work — matchings, Disjunctivize calls, rows scanned — next
  to wall-clock numbers);
* :class:`BenchRecorder` — accumulates measurement points and writes a
  machine-readable ``benchmarks/results/BENCH_<slug>.json`` trajectory,
  the artifact ``tools/bench_gate.py`` diffs against the committed
  baselines in ``benchmarks/results/baseline/``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import statistics
import time

from repro.obs import tracing

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

__all__ = [
    "RESULTS_DIR",
    "best_of",
    "median_of",
    "quick_mode",
    "sweep",
    "traced",
    "BenchRecorder",
]


def quick_mode() -> bool:
    """Is the quick (CI) profile active?  Set ``REPRO_BENCH_QUICK=1``."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def sweep(full: tuple, quick: tuple) -> tuple:
    """Pick the full or the quick parameter sweep per :func:`quick_mode`."""
    return quick if quick_mode() else full


def best_of(fn, repeat: int = 5) -> float:
    """Best (minimum) wall-clock seconds of ``fn()`` over ``repeat`` runs."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def median_of(fn, repeat: int = 5) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeat`` runs.

    The regression gate compares medians: on noisy shared runners the
    minimum rewards lucky runs and the mean is dragged by scheduler
    hiccups; the median is the stable middle ground.
    """
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def traced(fn):
    """Run ``fn()`` under a fresh tracer; return ``(result, counters)``."""
    with tracing("bench") as tracer:
        result = fn()
    return result, dict(sorted(tracer.counters.items()))


class BenchRecorder:
    """Accumulates measurement points for one ``BENCH_<slug>.json`` file."""

    def __init__(self, slug: str, title: str):
        self.slug = slug
        self.title = title
        self.points: list[dict] = []

    def add(self, **point) -> None:
        """Record one measurement point (arbitrary JSON-compatible fields)."""
        self.points.append(point)

    def write(self, **extra) -> pathlib.Path:
        """Write the trajectory to ``results/BENCH_<slug>.json``."""
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "bench": self.slug,
            "title": self.title,
            "python": platform.python_version(),
            "quick": quick_mode(),
            "points": self.points,
        }
        payload.update(extra)
        path = RESULTS_DIR / f"BENCH_{self.slug}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path
