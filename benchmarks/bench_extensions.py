"""Extension benches: negation push-down and union-view federation.

Neither is in the paper (negation is explicitly excluded; union views are
sketched in one sentence of Section 2) — these benches document that the
extensions preserve Eq. 1 ≡ Eq. 2 and what they cost.
"""

from obs_harness import best_of

from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import tdqm_translate
from repro.mediator import bookstore_federation, bookstore_mediator
from repro.rules import K_AMAZON


def test_negation_pushdown(benchmark, report):
    query = parse_query(
        'not ([ln = "Clancy"] and [pyear = 1997]) and [publisher = "oreilly"]'
    )
    result = benchmark(lambda: tdqm_translate(query, K_AMAZON))
    report(
        "Extension: negation push-down",
        [
            f"Q    = {to_text(query)}",
            f"S(Q) = {to_text(result.mapping)} "
            "(complement constraints map to True; the filter re-checks them)",
        ],
    )


def test_negation_end_to_end(benchmark, report):
    mediator = bookstore_mediator("amazon")
    queries = [
        parse_query('not [ln = "Clancy"]'),
        parse_query('not ([ln = "Clancy"] and [fn = "Tom"]) and [pyear = 1997]'),
        parse_query("not [ti contains java (and) jdk]"),
    ]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark(run)
    for query, answer in zip(queries, answers):
        assert mediator.check_equivalence(query)
    report(
        "Extension: negated queries, Eq.1 == Eq.2",
        [f"  {to_text(q)[:60]:<62} rows={len(a.rows)}" for q, a in zip(queries, answers)],
    )


def test_wrapper_overhead(benchmark, report):
    """Cost of grammar compensation: extra native calls + local re-check."""
    from repro.engine.grammar import QueryGrammar, Wrapper
    from repro.engine.sources_builtin import make_amazon
    from repro.workloads.datasets import random_books

    rows = random_books(300, seed=31)
    query = parse_query(
        '([author = "Clancy, Tom"] or [author = "Smith"] or '
        '[publisher = "oreilly"]) and [pdate during 97]'
    )

    def timed(source_factory, method):
        # Fresh source per run, but only the native call is timed.
        best = float("inf")
        for _ in range(5):
            source = source_factory()
            run = lambda: getattr(source, method)("catalog", query)
            best = min(best, best_of(run, repeat=1))
        return best

    unrestricted = timed(lambda: make_amazon(rows), "select_rows")

    def restricted_factory():
        source = make_amazon(rows)
        source.grammar = QueryGrammar(allow_disjunction=False)
        return source

    wrapped = timed(restricted_factory, "execute_rows")
    calls = len(
        Wrapper(make_amazon(rows), QueryGrammar(allow_disjunction=False)).plan_calls(query)
    )
    report(
        "Extension: wrapper overhead on a 300-book store",
        [
            f"native calls issued : {calls} (vs 1 unrestricted)",
            f"unrestricted select : {unrestricted * 1e3:.2f} ms",
            f"wrapped execute     : {wrapped * 1e3:.2f} ms "
            f"({wrapped / unrestricted:.1f}x)",
        ],
    )
    source = restricted_factory()
    benchmark(lambda: source.execute_rows("catalog", query))


def test_federation_pipeline(benchmark, report):
    mediator = bookstore_federation()
    queries = [
        parse_query('[ln = "Clancy"] and [fn = "Tom"]'),
        parse_query('[publisher = "mit"]'),
        parse_query("[ti contains java (near) jdk]"),
    ]

    def run():
        return [mediator.answer_mediated(q) for q in queries]

    answers = benchmark(run)
    rows = []
    for query, answer in zip(queries, answers):
        assert mediator.check_equivalence(query)
        rows.append(
            f"  {to_text(query)[:48]:<50} offers={len(answer.rows):>3} "
            f"plans={len(answer.plans)}"
        )
    report("Extension: federated bookstores (union view)", rows)
