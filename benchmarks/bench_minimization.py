"""Section 8's term-minimization footnote ([22]) made concrete.

Two findings the paper predicts:

* minimization helps locally — the map source's redundant emissions
  (Example 8) collapse once the theory knows ``Month ⟹ Year``-style
  entailments, and DNF terms with contradictory equalities vanish;
* minimization does **not** rescue Algorithm DNF — the 2^n terms of an
  independent chain are pairwise non-redundant, so the minimized DNF is
  exactly as large as the raw one while TDQM's output stays linear.
"""

from repro.core.dnf_mapper import dnf_map
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.scm import scm
from repro.core.tdqm import tdqm
from repro.core.theory import simplify_query
from repro.rules import K_AMAZON
from repro.workloads.generator import chain_query, synthetic_spec, vocabulary


def test_minimize_partial_date_redundancy(benchmark, report):
    # Feed SCM a query whose rules emit both the month and the year
    # period (suppression handles the common case; an ablated emission
    # set shows the simplifier doing the same job downstream).
    q = parse_query("[pdate during 97] and [pdate during May/97] and [a >= 3] and [a = 5]")
    simplified = benchmark(lambda: simplify_query(q))
    assert to_text(simplified) == "[pdate during May/97] and [a = 5]"
    report(
        "Minimization: entailed conjuncts dropped",
        [f"before: {to_text(q)}", f"after : {to_text(simplified)}"],
    )


def test_minimize_contradictory_dnf_terms(benchmark, report):
    # A DNF whose distribution produced contradictory terms.
    q = parse_query(
        "([a = 1] and [a = 2] and [b = 1]) or ([a = 1] and [b = 2]) or "
        "([c >= 5] and [c < 3])"
    )
    simplified = benchmark(lambda: simplify_query(q))
    assert to_text(simplified) == "[a = 1] and [b = 2]"
    report(
        "Minimization: unsatisfiable disjuncts vanish",
        [f"before: {q.node_count()} nodes", f"after : {simplified.node_count()} nodes"],
    )


def test_minimization_does_not_rescue_dnf(benchmark, report):
    n = 8
    spec = synthetic_spec([], singletons=vocabulary(2 * n), name="K_min")
    query = chain_query(n)
    dnf_mapping = dnf_map(query, spec.matcher())
    tdqm_mapping = tdqm(query, spec.matcher())

    minimized = benchmark.pedantic(
        lambda: simplify_query(dnf_mapping, absorb=False), rounds=3, iterations=1
    )
    assert minimized == dnf_mapping  # untouched: nothing was redundant
    report(
        "Minimization cannot rescue DNF (Section 8)",
        [
            f"TDQM          : {tdqm_mapping.node_count()} nodes",
            f"DNF           : {dnf_mapping.node_count()} nodes",
            f"DNF minimized : {minimized.node_count()} nodes "
            "(2^n satisfiable, pairwise non-redundant terms)",
        ],
    )


def test_minimize_amazon_mapping(benchmark, report):
    # End-to-end: translate, then minimize — with the sound R6/R7 rules
    # suppression already avoids the redundancy, so minimization is a
    # no-op here (the invariant worth pinning down).
    q = parse_query('[ln = "Smith"] and [pyear = 1997] and [pmonth = 5]')
    mapping = scm(q, K_AMAZON)
    simplified = benchmark(lambda: simplify_query(mapping))
    assert simplified == mapping
    report(
        "Minimization after sound SCM is a no-op",
        [f"mapping: {to_text(mapping)} (already minimal)"],
    )
