"""F2: regenerate the Figure 2 table (DESIGN.md row F2).

Prints the same rows the paper's Figure 2 reports — each original
constraint group and the Amazon constraint it maps to — and times
Algorithm SCM on both queries.
"""

from repro.core.printer import to_text
from repro.core.scm import scm_translate
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import figure2_q1, figure2_q2


def _figure_rows(query):
    result = scm_translate(query, K_AMAZON)
    rows = []
    for matching in result.kept_matchings:
        group = " ∧ ".join(sorted(str(c) for c in matching.constraints))
        rows.append(f"  {group:<55} -> {to_text(matching.emission)}")
    rows.append(f"  S = {to_text(result.mapping)}")
    return result, rows


def test_figure2_q1(benchmark, report):
    query = figure2_q1()
    result = benchmark(lambda: scm_translate(query, K_AMAZON))
    assert to_text(result.mapping) == (
        '[author = "Smith"] and [ti-word contains java (and) jdk] and '
        "[pdate during May/97] and "
        "([ti-word contains www] or [subject-word contains www])"
    )
    _result, rows = _figure_rows(query)
    report("Figure 2 (top): Q1 -> S1 for Amazon", [f"Q1 = {to_text(query)}", *rows])


def test_figure2_q2(benchmark, report):
    query = figure2_q2()
    result = benchmark(lambda: scm_translate(query, K_AMAZON))
    assert to_text(result.mapping) == (
        '[publisher = "oreilly"] and [title starts "jdk for java"] and '
        '[subject = "programming"] and [isbn = "081815181Y"]'
    )
    _result, rows = _figure_rows(query)
    report("Figure 2 (bottom): Q2 -> S2 for Amazon", [f"Q2 = {to_text(query)}", *rows])
