#!/usr/bin/env python
"""Multi-source mediation with joins: the Example 3 scenario.

The mediator exports ``fac(ln, fn, bib, dept)`` — integrating ``aubib``
from source T1 with ``prof`` from source T2 through the NameLnFn
conversion — and ``pub(ti, ln, fn)`` over T1's ``paper``.  The query asks
for papers written by CS faculty interested in data mining:

    [fac.ln = pub.ln] ∧ [fac.fn = pub.fn]
      ∧ [fac.bib contains data (near) mining] ∧ [fac.dept = cs]

Watch the translation do three different things at once:

* the *pair* of join constraints maps to ONE join on the combined names
  (rule R5 of Figure 5 — constraint inter-dependency across joins);
* the unsupported proximity operator relaxes to a keyword conjunction
  (``near`` -> ``∧``), leaving the original constraint in the filter F;
* ``[fac.dept = cs]`` translates to T2's numeric code 230 and is invisible
  to T1.

Run:  python examples/faculty_join.py
"""

from repro import parse_query, to_text
from repro.mediator import faculty_mediator
from repro.workloads.paper_queries import example3_query

mediator = faculty_mediator()
query = example3_query()
print(f"user query Q:\n  {to_text(query)}\n")

answer = mediator.answer_mediated(query)
print(f"S1(Q) for T1 : {to_text(answer.plan.mappings['T1'])}")
print(f"S2(Q) for T2 : {to_text(answer.plan.mappings['T2'])}")
print(f"filter F     : {to_text(answer.plan.filter)}\n")

print("results (fac x pub combinations):")
for row in sorted(answer.rows, key=str):
    fac_row = dict(row[0][2])
    pub_row = dict(row[1][2])
    print(f"  {fac_row['fn']} {fac_row['ln']} ({fac_row['dept']}): {pub_row['ti']}")

assert mediator.check_equivalence(query)
print("\nmediated == direct (Eq. 1 == Eq. 2)")

# --- a self-join over two fac instances (Section 4.2) ------------------------
print("\nself-join: professors sharing a last name, at least one in CS")
q2 = parse_query("[fac[1].ln = fac[2].ln] and [fac[1].dept = cs]")
answer2 = mediator.answer_mediated(q2)
print(f"S2(Q) for T2 : {to_text(answer2.plan.mappings['T2'])}")
print(f"rows         : {len(answer2.rows)}")
assert mediator.check_equivalence(q2)
