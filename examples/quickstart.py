#!/usr/bin/env python
"""Quickstart: translate one query for two very different bookstores.

Reproduces Example 1 of the paper.  A mediator exports an integrated
``book(title, ln, fn, ...)`` view; the user asks for books by Tom Clancy.

* **Amazon** wants a combined ``author`` attribute in ``"Last, First"``
  format — the ``ln``/``fn`` pair is inter-dependent and must be
  translated *together*.
* **Clbooks** only supports word containment over author names — the
  translation is a *relaxation*, and the mediator must redo the original
  query as a filter to drop false positives such as "Clancy, Joe Tom".

Run:  python examples/quickstart.py
"""

from repro import parse_query, to_text, tdqm, build_filter
from repro.mediator import bookstore_mediator
from repro.rules import K_AMAZON, K_CLBOOKS

query = parse_query('[fn = "Tom"] and [ln = "Clancy"]')
print(f"user query Q          : {to_text(query)}")

# --- translation alone -------------------------------------------------------
print(f"S(Q) for Amazon       : {to_text(tdqm(query, K_AMAZON))}")
print(f"S(Q) for Clbooks      : {to_text(tdqm(query, K_CLBOOKS))}")

# --- translation + residue filter (Eq. 2/3) ---------------------------------
plan = build_filter(query, {"Clbooks": K_CLBOOKS})
print(f"Clbooks filter F      : {to_text(plan.filter)}")

# --- end to end: run against the simulated stores ----------------------------
for store in ("amazon", "clbooks"):
    mediator = bookstore_mediator(store)
    answer = mediator.answer_mediated(query)
    source = next(iter(mediator.sources.values()))
    raw = source.select_rows("catalog", answer.plan.mappings[source.name])
    titles = sorted(dict(row[0][2])["title"] for row in answer.rows)
    print(f"\n{store}:")
    print(f"  native query        : {to_text(answer.plan.mappings[source.name])}")
    print(f"  rows from source    : {len(raw)}")
    print(f"  rows after filter F : {len(answer.rows)}  -> {titles}")
    assert mediator.check_equivalence(query), "Eq. 1 and Eq. 2 disagree!"

print("\nmediated answers match direct evaluation (Eq. 1 == Eq. 2)")
