#!/usr/bin/env python
"""Bookstore mediation: the Figure 2 workload end-to-end.

Translates the paper's Q̂1 and Q̂2 (Figure 2) plus the complex Q̂_book
(Figure 7) for the Amazon-style target, shows the algorithms at work
(matchings, submatching suppression, PSafe partition, local rewriting),
and executes everything against the simulated store.

Run:  python examples/bookstore_mediation.py
"""

from repro import (
    build_filter,
    dnf_map,
    parse_query,
    render_tree,
    scm_translate,
    tdqm_translate,
    to_text,
)
from repro.mediator import bookstore_mediator
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import figure2_q1, figure2_q2, qbook


def show_scm(title, query):
    print(f"\n=== {title} ===")
    print(f"original : {to_text(query)}")
    result = scm_translate(query, K_AMAZON)
    print("matchings:")
    for matching in result.all_matchings:
        kept = "kept   " if matching in result.kept_matchings else "dropped"
        group = ", ".join(sorted(str(c) for c in matching.constraints))
        print(f"  [{kept}] {matching.rule_name}: {{{group}}} -> {to_text(matching.emission)}")
    print(f"mapping  : {to_text(result.mapping)}")
    return result.mapping


show_scm("Figure 2: Q1 -> S1", figure2_q1())
show_scm("Figure 2: Q2 -> S2", figure2_q2())

# --- the complex query of Figure 7 -------------------------------------------
print("\n=== Figure 7: Q_book via TDQM ===")
book_query = qbook()
print(render_tree(book_query))
result = tdqm_translate(book_query, K_AMAZON)
print(f"TDQM mapping : {to_text(result.mapping)}")
print(
    f"work         : scm_calls={result.stats.scm_calls} "
    f"psafe_calls={result.stats.psafe_calls} "
    f"blocks_rewritten={result.stats.blocks_rewritten}"
)
dnf_mapping = dnf_map(book_query, K_AMAZON)
print(
    f"compactness  : TDQM={result.mapping.node_count()} nodes, "
    f"DNF baseline={dnf_mapping.node_count()} nodes"
)

# --- execute against the store ------------------------------------------------
print("\n=== end to end ===")
mediator = bookstore_mediator("amazon")
for query in (figure2_q1(), book_query, parse_query('[ln = "Clancy"]')):
    answer = mediator.answer_mediated(query)
    assert mediator.check_equivalence(query)
    print(
        f"{to_text(query)[:60]:<62} -> {len(answer.rows)} rows "
        f"(filter: {to_text(answer.plan.filter)})"
    )
print("\nall mediated answers verified against direct evaluation")
