#!/usr/bin/env python
"""Writing your own mapping specification with the rule DSL.

Scenario: a price-comparison mediator exposes product constraints in
inches and dollars; the target catalog stores centimeters and integer
cents, under different attribute names.  One rule per constraint family,
including a two-constraint dependency (a price *band* must be shipped as
one range constraint) and a vocabulary audit to catch missing rules.

Run:  python examples/custom_rules.py
"""

from repro import C, parse_query, tdqm, to_text
from repro.conversions.units import inches_to_cm, usd_to_cents
from repro.core.values import Range
from repro.rules import MappingSpecification, audit_vocabulary
from repro.rules.dsl import V, cpat, rule, value_is

# --- rules --------------------------------------------------------------------

width_rule = rule(
    "R_width",
    patterns=[cpat("width-in", "=", V("W"))],
    where=[value_is("W")],
    let={"CM": lambda b: inches_to_cm(b["W"])},
    emit=lambda b: C("width_cm", "=", b["CM"]),
    exact=True,
    doc="unit conversion: inches -> centimeters",
)

# price-min and price-max are inter-dependent: the target only accepts a
# single range constraint, so the pair must be translated together.
price_band_rule = rule(
    "R_price_band",
    patterns=[cpat("price-min", "=", V("LO")), cpat("price-max", "=", V("HI"))],
    where=[value_is("LO", "HI")],
    let={"R": lambda b: Range(usd_to_cents(b["LO"]), usd_to_cents(b["HI"]))},
    emit=lambda b: C("cents_range", "=", b["R"]),
    exact=True,
    doc="dollar band -> integer-cent range (dependent pair)",
)

price_cap_rule = rule(
    "R_price_cap",
    patterns=[cpat("price-max", "=", V("HI"))],
    where=[value_is("HI")],
    let={"R": lambda b: Range(0, usd_to_cents(b["HI"]))},
    emit=lambda b: C("cents_range", "=", b["R"]),
    exact=True,
    doc="a lone maximum becomes a 0-based range",
)

name_rule = rule(
    "R_name",
    patterns=[cpat("product", "=", V("N"))],
    where=[value_is("N")],
    emit=lambda b: C("sku_name", "=", b["N"]),
    exact=True,
)

K_CATALOG = MappingSpecification(
    name="K_catalog",
    target="metric-catalog",
    rules=(width_rule, price_band_rule, price_cap_rule, name_rule),
    description="demo: unit + currency conversion with a dependent pair",
)

# --- translate ------------------------------------------------------------------

queries = [
    '[product = "desk"] and [width-in = 3]',
    '[product = "desk"] and [price-min = 10.5] and [price-max = 19.99]',
    '[price-max = 5] or ([product = "lamp"] and [width-in = 12])',
]
for text in queries:
    query = parse_query(text)
    print(f"{to_text(query)}\n  -> {to_text(tdqm(query, K_CATALOG))}\n")

# --- audit the vocabulary --------------------------------------------------------

sample = [
    C("product", "=", "desk"),
    C("width-in", "=", 3),
    C("price-min", "=", 10.0),
    C("price-max", "=", 20.0),
    C("color", "=", "red"),  # no rule: will map to True and be flagged
]
report = audit_vocabulary(K_CATALOG, sample)
print("vocabulary audit:")
print(report)
