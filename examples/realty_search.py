#!/usr/bin/env python
"""Realty search: mapping inequalities when value conversions flip order.

The paper's examples map equalities, dates, and text; the framework
handles *any* operator.  Here the interesting rules are:

* ``[price-usd <= X]`` -> ``[price_cents <= 100·X]``  (monotone: the
  operator survives);
* ``[quality-rank <= K]`` -> ``[score >= 101 - K]``  (the conversion
  reverses order, so the operator flips — get this wrong and the
  translation is no longer subsuming);
* ``[area-min-sqft] ∧ [area-max-sqft]`` -> one ``area_m2`` range (an
  inter-dependent pair, like the paper's pyear/pmonth).

Run:  python examples/realty_search.py
"""

from repro import parse_query, to_text
from repro.core.scm import scm
from repro.mediator import realty_mediator
from repro.rules.library_realty import K_REALTY

print("translations:")
for text in (
    "[price-usd <= 600000]",
    "[quality-rank <= 10]",
    "[quality-rank > 30]",
    "[area-min-sqft = 700] and [area-max-sqft = 1500]",
):
    query = parse_query(text)
    print(f"  {to_text(query):<52} -> {to_text(scm(query, K_REALTY))}")

mediator = realty_mediator()
query = parse_query(
    '([city = "palo alto"] or [city = "menlo park"]) and '
    "[price-usd < 800000] and [quality-rank <= 20]"
)
print(f"\nsearch: {to_text(query)}")
answer = mediator.answer_mediated(query)
print(f"native query: {to_text(answer.plan.mappings['listings'])}")
for row in sorted(answer.rows, key=str):
    listing = dict(row[0][2])
    print(
        f"  {listing['id']}  {listing['city']:<12} "
        f"${listing['price-usd']:>10,.0f}  rank {listing['quality-rank']}"
    )
assert mediator.check_equivalence(query)
print("\nmediated == direct (operator flips verified by execution)")
