#!/usr/bin/env python
"""Mediating a web-form store: grammar restrictions on top of vocabulary.

Section 3 distinguishes vocabmap's *vocabulary* mapping from the
*grammatic* query templates of capability-description frameworks (QDTL,
RQDL, ...).  Real interfaces have both kinds of limits: this store speaks
Amazon's vocabulary but behind a web form that accepts **no disjunctions
and at most three fields**.

The wrapper splits the translated query into conforming native calls,
pushes the largest prefix that fits, re-checks the full query locally,
and de-duplicates — so mediated answers still equal direct evaluation.

Run:  python examples/webform_store.py
"""

from repro import parse_query, tdqm, to_text
from repro.engine.grammar import QueryGrammar, Wrapper
from repro.mediator import bookstore_mediator
from repro.rules import K_AMAZON

FORM = QueryGrammar(allow_disjunction=False, max_constraints=3)

query = parse_query(
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"] and [pyear = 1997]'
)
print(f"user query : {to_text(query)}")

mapping = tdqm(query, K_AMAZON)
print(f"S(Q)       : {to_text(mapping)}")
print(f"form fits? : violations = {FORM.violations(mapping)}\n")

mediator = bookstore_mediator("amazon", grammar=FORM)
source = mediator.sources["Amazon"]
wrapper = Wrapper(source, FORM)
print("native calls the wrapper issues instead:")
for call in wrapper.plan_calls(mapping):
    print(f"  {to_text(call)}")

answer = mediator.answer_mediated(query)
titles = sorted(dict(row[0][2])["title"] for row in answer.rows)
print(f"\nresults ({len(answer.rows)}): {titles}")
assert mediator.check_equivalence(query)
print("mediated == direct, despite the form's restrictions")

# A keyword query whose *translation* introduces the disjunction (rule R8
# emits ti-word ∨ subject-word): the form never sees an OR.
q2 = parse_query("[kwd contains www] and [pyear = 1997]")
print(f"\nuser query : {to_text(q2)}")
for call in wrapper.plan_calls(tdqm(q2, K_AMAZON)):
    print(f"  native call: {to_text(call)}")
assert mediator.check_equivalence(q2)
print("mediated == direct")
