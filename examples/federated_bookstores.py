#!/usr/bin/env python
"""Federated book search: one view, two stores, two vocabularies.

The paper's introduction motivates mediation with shopping comparators
(www.acses.com) that search many bookstores at once.  Here the ``book``
view is a *union of SPJ components* (Section 2) over the Amazon-style and
Clbooks-style stores: each component is translated with its own rule set,
executed natively, filtered with its own residue, and the results are
unioned.

Run:  python examples/federated_bookstores.py
"""

from repro import parse_query, to_text
from repro.mediator import bookstore_federation

mediator = bookstore_federation()
query = parse_query('[ln = "Clancy"] and [fn = "Tom"]')
print(f"user query: {to_text(query)}\n")

answer = mediator.answer_mediated(query)
print("per-store plans:")
for plan in answer.plans:
    for store, mapping in plan.mappings.items():
        print(f"  {store:<8} native: {to_text(mapping)}")
        print(f"  {'':<8} filter: {to_text(plan.filter)}")

print(f"\nfederated results ({len(answer.rows)} offers):")
for row in sorted(answer.rows, key=str):
    book = dict(row[0][2])
    print(f"  {book['title']:<28} {book['publisher']:<10} isbn {book['id-no']}")

assert mediator.check_equivalence(query)
print("\nfederated answer verified against direct evaluation of the union view")

# A title only Computer Literacy stocks:
q2 = parse_query('[publisher = "mit"]')
answer2 = mediator.answer_mediated(q2)
titles = sorted(dict(row[0][2])["title"] for row in answer2.rows)
print(f"\nMIT-press stock (Clbooks only): {titles}")
assert mediator.check_equivalence(q2)
