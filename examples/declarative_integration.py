#!/usr/bin/env python
"""A complete integration written as data: the film-catalog scenario.

No Python rule code at all — the mapping specification is a JSON-shaped
dict (reviewable, diffable, loadable from a file), the source is three
declarations, and the pipeline still guarantees Eq. 1 ≡ Eq. 2.

Run:  python examples/declarative_integration.py
"""

from repro import parse_query, to_text
from repro.engine import BaseRef, Capability, Relation, Source, ViewDef
from repro.mediator import Mediator
from repro.rules.declarative import spec_from_dict

SPEC = {
    "name": "K_films",
    "target": "filmdb",
    "rules": [
        {
            "name": "R_title",
            "match": [{"attr": "title", "op": "=", "bind": "T"}],
            "where": [{"cond": "value_is", "vars": ["T"]}],
            "emit": {"attr": "name", "op": "=", "value": "$T"},
            "exact": True,
        },
        {
            "name": "R_director_pair",
            "doc": "first+last name are inter-dependent (one stored field)",
            "match": [
                {"attr": "dir-ln", "op": "=", "bind": "L"},
                {"attr": "dir-fn", "op": "=", "bind": "F"},
            ],
            "where": [{"cond": "value_is", "vars": ["L", "F"]}],
            "let": [{"var": "N", "fn": "ln_fn_to_name", "args": ["$L", "$F"]}],
            "emit": {"attr": "director", "op": "=", "value": "$N"},
            "exact": True,
        },
        {
            "name": "R_decade",
            "doc": "a mediator decade becomes a year band at the source",
            "match": [{"attr": "decade", "op": "=", "bind": "D"}],
            "where": [{"cond": "value_is", "vars": ["D"]}],
            "let": [
                {"var": "LO", "fn": "int", "args": ["$D"]},
                {"var": "HI", "fn": "plus10", "args": ["$D"]},
            ],
            "emit": {
                "all": [
                    {"attr": "year", "op": ">=", "value": "$LO"},
                    {"attr": "year", "op": "<", "value": "$HI"},
                ]
            },
            "exact": True,
        },
    ],
}

FILMS = (
    {"name": "Heat", "director": "Mann, Michael", "year": 1995},
    {"name": "Collateral", "director": "Mann, Michael", "year": 2004},
    {"name": "Alien", "director": "Scott, Ridley", "year": 1979},
    {"name": "Blade Runner", "director": "Scott, Ridley", "year": 1982},
)

spec = spec_from_dict(SPEC, functions={"plus10": lambda d: int(d) + 10})

source = Source(
    "filmdb",
    {"films": Relation("films", ("name", "director", "year"), FILMS)},
    Capability.of(
        selections=[("name", "="), ("director", "="), ("year", ">="), ("year", "<")]
    ),
)


def film_row(by_alias):
    row = by_alias["films"]
    ln, fn = row["director"].split(", ")
    return {
        "title": row["name"],
        "dir-ln": ln,
        "dir-fn": fn,
        "decade": (row["year"] // 10) * 10,
    }


mediator = Mediator(
    views={
        "film": ViewDef(
            name="film",
            attributes=("title", "dir-ln", "dir-fn", "decade"),
            bases=(BaseRef("filmdb", "films"),),
            combine=film_row,
        )
    },
    sources={"filmdb": source},
    specs={"filmdb": spec},
)

for text in (
    '[dir-ln = "Scott"] and [dir-fn = "Ridley"] and [decade = 1980]',
    "[decade = 1990] or [decade = 2000]",
    '[dir-ln = "Mann"]',
):
    query = parse_query(text)
    answer = mediator.answer_mediated(query)
    titles = sorted(dict(row[0][2])["title"] for row in answer.rows)
    print(f"{to_text(query)}")
    print(f"  native : {to_text(answer.plan.mappings['filmdb'])}")
    print(f"  filter : {to_text(answer.plan.filter)}")
    print(f"  result : {titles}\n")
    assert mediator.check_equivalence(query)

print("all declarative-spec queries verified (Eq. 1 == Eq. 2)")
