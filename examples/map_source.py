#!/usr/bin/env python
"""The map source of Example 8: interrelated target attributes.

The mediator context F expresses rectangle queries with four bounds
(``x_min``/``x_max``/``y_min``/``y_max``); the target G wants either axis
ranges (``X_range``/``Y_range``) or corners (``C_ll``/``C_ur``).  Because a
range pair and a corner pair describe the same rectangle, *every* pairing
of the mediator bounds matches some rule — producing the paper's canonical
**redundant cross-matchings**.

The cheap safety test (Definition 5) flags the conjunction as unsafe, but
the precise Theorem 3 test — armed with semantic subsumption evaluated
over a coordinate grid — proves the range pairing separable, exactly as
Figure 9 illustrates.

Run:  python examples/map_source.py
"""

from repro import parse_query, scm, to_text
from repro.core.safety import base_cross_matchings, is_safe_base, is_separable_base
from repro.core.subsume import empirical_subsumes
from repro.engine.eval import evaluate_row
from repro.engine.sources_builtin import MAP_SOURCE_VIRTUALS
from repro.mediator import map_mediator
from repro.rules import K_MAP
from repro.workloads.datasets import grid_points

F1 = parse_query("[x_min = 10]")
F2 = parse_query("[x_max = 30]")
F3 = parse_query("[y_min = 20]")
F4 = parse_query("[y_max = 40]")

query = parse_query(
    "[x_min = 10] and [x_max = 30] and [y_min = 20] and [y_max = 40]"
)
print(f"mediator query : {to_text(query)}")
print(f"G translation  : {to_text(scm(query, K_MAP))}\n")


def semantic_subsumes(broad, narrow):
    rows = grid_points(step=5, limit=60)
    return empirical_subsumes(
        broad, narrow, rows,
        lambda q, row: evaluate_row(q, row, MAP_SOURCE_VIRTUALS),
    )


matcher = K_MAP.matcher()
for label, pairing in (
    ("(f1 f2)(f3 f4)  ranges ", [frozenset({F1, F2}), frozenset({F3, F4})]),
    ("(f1 f4)(f2 f3)  mixed  ", [frozenset({F1, F4}), frozenset({F2, F3})]),
):
    delta = base_cross_matchings(pairing, matcher)
    safe = is_safe_base(pairing, matcher)
    separable = is_separable_base(pairing, matcher, subsumes=semantic_subsumes)
    cross = ["{" + ", ".join(sorted(str(c) for c in m)) + "}" for m in delta]
    print(f"{label}: safe={safe!s:5}  separable={separable!s:5}  cross-matchings={cross}")

# --- Figure 9's witness: g3 strictly contains g1 g2 ---------------------------
print("\nFigure 9: [C_ll = (10, 20)] subsumes [X_range]∧[Y_range]")
mediator = map_mediator(rows=grid_points(step=5, limit=60))
corner = mediator.sources["G"].select_rows("points", parse_query("[C_ll = (10, 20)]"))
rect = mediator.sources["G"].select_rows(
    "points", parse_query("[X_range = (10:30)] and [Y_range = (20:40)]")
)
print(f"  |g3| = {len(corner)} points, |g1 g2| = {len(rect)} points")
print(f"  witness (50, 30) in g3: {any(r['x'] == 50 and r['y'] == 30 for r in corner)}")

answer = mediator.answer_mediated(query)
assert mediator.check_equivalence(query)
print(f"\nend to end: {len(answer.rows)} points, filter = {to_text(answer.plan.filter)}")
